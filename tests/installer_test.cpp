// Tests for the installer (pkg/installer.hpp): clean/dirty dependency
// behaviour, side effects, source-build churn, uninstall cleanup, and the
// version drift that underlies the rule-based method's fragility.
#include "pkg/installer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/strings.hpp"
#include "fs/recorder.hpp"

namespace praxi::pkg {
namespace {

class InstallerTest : public ::testing::Test {
 protected:
  InstallerTest()
      : catalog_(Catalog::subset(42, 12, 3)),
        clock_(fs::make_clock()),
        fs_(clock_),
        installer_(fs_, catalog_, Rng(7)) {
    provision_base_image(fs_);
  }

  Catalog catalog_;
  fs::SimClockPtr clock_;
  fs::InMemoryFilesystem fs_;
  Installer installer_;
};

TEST_F(InstallerTest, InstallMaterializesPayload) {
  installer_.install("nginx");
  EXPECT_TRUE(installer_.installed("nginx"));
  const PackageSpec& spec = catalog_.get("nginx");
  std::size_t present = 0;
  for (const auto& file : spec.files) {
    if (file.version_variants == 0 && file.optional_probability == 0.0) {
      EXPECT_TRUE(fs_.is_file(file.path)) << file.path;
    }
    // Count stable payload actually present.
    if (fs_.exists(file.path)) ++present;
  }
  EXPECT_GT(present, spec.files.size() / 2);
}

TEST_F(InstallerTest, InstallPullsMissingDependencies) {
  const auto& deps = catalog_.get("nginx").deps;
  ASSERT_FALSE(deps.empty());
  installer_.install("nginx");
  for (const auto& dep : deps) EXPECT_TRUE(installer_.installed(dep));
}

TEST_F(InstallerTest, CleanModeRequiresPreinstalledDeps) {
  InstallOptions options;
  options.install_missing_deps = false;
  EXPECT_THROW(installer_.install("nginx", options), std::logic_error);

  installer_.preinstall_all_dependencies();
  EXPECT_NO_THROW(installer_.install("nginx", options));
}

TEST_F(InstallerTest, DoubleInstallThrows) {
  installer_.install("apache2");
  EXPECT_THROW(installer_.install("apache2"), std::logic_error);
}

TEST_F(InstallerTest, UnknownPackageThrows) {
  EXPECT_THROW(installer_.install("not-a-package"), std::invalid_argument);
}

TEST_F(InstallerTest, UninstallRemovesPayloadAndNamespaces) {
  installer_.install("nginx");
  const PackageSpec& spec = catalog_.get("nginx");
  installer_.uninstall("nginx");
  EXPECT_FALSE(installer_.installed("nginx"));
  for (const auto& file : spec.files) {
    EXPECT_FALSE(fs_.exists(file.path)) << file.path;
  }
  // Per-package namespace directory pruned once empty.
  EXPECT_FALSE(fs_.exists("/etc/" + spec.stem));
  // Dependencies survive an application uninstall.
  for (const auto& dep : spec.deps) EXPECT_TRUE(installer_.installed(dep));
}

TEST_F(InstallerTest, UninstallNotInstalledThrows) {
  EXPECT_THROW(installer_.uninstall("apache2"), std::logic_error);
}

TEST_F(InstallerTest, AptSideEffectsTouchSystemMetadata) {
  fs::ChangesetRecorder recorder(fs_);
  installer_.install("apache2");
  const fs::Changeset cs = recorder.eject();
  std::set<std::string> paths;
  for (const auto& rec : cs.records()) paths.insert(rec.path);
  EXPECT_TRUE(paths.count("/var/lib/dpkg/status"));
  EXPECT_TRUE(paths.count("/var/log/dpkg.log"));
  bool apt_archive = false;
  for (const auto& path : paths) {
    apt_archive |= path.rfind("/var/cache/apt/archives/apache2_", 0) == 0;
  }
  EXPECT_TRUE(apt_archive);
}

TEST_F(InstallerTest, SideEffectsCanBeDisabled) {
  fs::ChangesetRecorder recorder(fs_);
  InstallOptions options;
  options.side_effects = false;
  installer_.install("apache2", options);
  const fs::Changeset cs = recorder.eject();
  for (const auto& rec : cs.records()) {
    EXPECT_NE(rec.path, "/var/lib/dpkg/status");
  }
}

TEST_F(InstallerTest, SourceBuildChurnsTmpAndCleansUp) {
  fs::ChangesetRecorder recorder(fs_);
  installer_.install("redis-unstable");
  const fs::Changeset cs = recorder.eject();

  bool build_create = false, build_delete = false, object_files = false;
  for (const auto& rec : cs.records()) {
    if (rec.path.rfind("/tmp/build-redis-unstable", 0) == 0) {
      build_create |= rec.kind == fs::ChangeKind::kCreate;
      build_delete |= rec.kind == fs::ChangeKind::kDelete;
      object_files |= rec.path.size() > 2 &&
                      rec.path.compare(rec.path.size() - 2, 2, ".o") == 0;
    }
  }
  EXPECT_TRUE(build_create);
  EXPECT_TRUE(build_delete);
  EXPECT_TRUE(object_files);
  // The build tree itself is gone after installation.
  bool any_left = false;
  for (const auto& name : fs_.list_dir("/tmp")) {
    any_left |= name.rfind("build-redis-unstable", 0) == 0;
  }
  EXPECT_FALSE(any_left);
}

TEST_F(InstallerTest, VersionVariantFilenamesDriftAcrossInstalls) {
  // Find a package with a version-variant file in this subset.
  std::string target;
  std::string variant_base;
  for (const auto& name : catalog_.application_names()) {
    for (const auto& file : catalog_.get(name).files) {
      if (file.version_variants >= 2) {
        target = name;
        variant_base = file.path;
        break;
      }
    }
    if (!target.empty()) break;
  }
  ASSERT_FALSE(target.empty()) << "catalog subset has no variant files";

  std::set<std::string> observed;
  for (int i = 0; i < 12; ++i) {
    fs::ChangesetRecorder recorder(fs_);
    installer_.install(target);
    const fs::Changeset cs = recorder.eject();
    for (const auto& rec : cs.records()) {
      if (rec.path.rfind(variant_base, 0) == 0) observed.insert(rec.path);
    }
    installer_.uninstall(target);
  }
  EXPECT_GE(observed.size(), 2u)
      << "expected " << variant_base << " to drift across installs";
}

TEST_F(InstallerTest, UninstallEverythingRestoresBase) {
  installer_.install("nginx");
  installer_.install("apache2");
  installer_.uninstall_everything();
  EXPECT_TRUE(installer_.installed_packages().empty());
  EXPECT_FALSE(fs_.exists("/usr/bin/nginx"));
  // Base image files survive.
  EXPECT_TRUE(fs_.exists("/var/lib/dpkg/status"));
}

TEST_F(InstallerTest, InstalledPackagesSorted) {
  installer_.install("nginx");
  installer_.install("apache2");
  const auto names = installer_.installed_packages();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_TRUE(std::find(names.begin(), names.end(), "nginx") != names.end());
}

TEST_F(InstallerTest, ClockAdvancesDuringInstall) {
  const auto before = clock_->now_ms();
  installer_.install("nginx");
  EXPECT_GT(clock_->now_ms(), before);
}

TEST_F(InstallerTest, UpgradeRewritesPayloadInPlace) {
  installer_.install("nginx");
  fs::ChangesetRecorder recorder(fs_);
  installer_.upgrade("nginx");
  const fs::Changeset cs = recorder.eject();

  ASSERT_FALSE(cs.empty());
  std::size_t modifies = 0;
  for (const auto& rec : cs.records()) {
    modifies += rec.kind == fs::ChangeKind::kModify;
  }
  EXPECT_GT(modifies, 5u) << "an upgrade must rewrite existing files";
  // The package is still installed and still removable afterwards.
  EXPECT_TRUE(installer_.installed("nginx"));
  installer_.uninstall("nginx");
  for (const auto& file : catalog_.get("nginx").files) {
    EXPECT_FALSE(fs_.exists(file.path)) << file.path;
  }
}

TEST_F(InstallerTest, UpgradeNotInstalledThrows) {
  EXPECT_THROW(installer_.upgrade("nginx"), std::logic_error);
}

TEST_F(InstallerTest, UpgradeCanRotateVariantFilenames) {
  // Across enough upgrades, at least one version-variant file must change
  // its on-disk name — the release drift that defeats exact-path rules.
  installer_.install("apache2");
  bool rotated = false;
  for (int i = 0; i < 10 && !rotated; ++i) {
    fs::ChangesetRecorder recorder(fs_);
    installer_.upgrade("apache2");
    const fs::Changeset cs = recorder.eject();
    for (const auto& rec : cs.records()) {
      rotated |= rec.kind == fs::ChangeKind::kDelete &&
                 rec.path.find("-v") != std::string::npos;
    }
  }
  EXPECT_TRUE(rotated);
}

}  // namespace
}  // namespace praxi::pkg
