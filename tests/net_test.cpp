// Tests for the TCP transport (src/net): loopback frame exchange, the
// hello/ack/busy protocol, partial-frame reassembly straight off a socket,
// overload (kBusy) behavior of the bounded ingest queue, reconnect-and-
// resend recovery from injected write faults, and the acceptance
// end-to-end: four concurrent agents streaming 1000 reports through a
// SocketServer under drops, truncated writes, and forced reconnects, with
// zero acknowledged-report loss or duplication and discoveries identical
// to the in-memory MessageBus run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/socket_client.hpp"
#include "net/socket_server.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace praxi::net {
namespace {

using service::ChangesetReport;
using service::TransportError;

/// Polls `pred` every couple of milliseconds until it holds or `limit`
/// elapses. Socket tests assert on state another thread produces; a bounded
/// poll keeps them deterministic-in-outcome without sleeping blindly.
template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds limit) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Client config pointed at `server` with test-friendly fast timings.
SocketClientConfig client_config(const SocketServer& server,
                                 const std::string& client_id) {
  SocketClientConfig config;
  config.port = server.port();
  config.client_id = client_id;
  config.transport.connect_timeout_ms = 2000;
  config.transport.io_timeout_ms = 500;
  config.transport.ack_timeout_ms = 150;
  config.transport.backoff_initial_ms = 2;
  config.transport.backoff_max_ms = 20;
  return config;
}

TEST(SocketLoopback, RoundTripsPayloadsInOrder) {
  SocketServer server;
  SocketClient client(client_config(server, "vm-0"));

  const std::vector<std::string> payloads = {"report-alpha", "report-beta",
                                             std::string(4096, 'x')};
  for (const auto& payload : payloads) client.send(payload);
  EXPECT_TRUE(client.flush(5000));

  std::vector<std::string> got;
  wait_until(
      [&] {
        for (auto& p : server.drain()) got.push_back(std::move(p));
        return got.size() >= payloads.size();
      },
      std::chrono::milliseconds(5000));
  EXPECT_EQ(got, payloads) << "single client: arrival order is send order";

  const auto client_stats = client.stats();
  EXPECT_EQ(client_stats.acked_frames, payloads.size());
  EXPECT_EQ(client_stats.pending_frames, 0u);
  const auto server_stats = server.stats();
  EXPECT_EQ(server_stats.delivered_frames, payloads.size());

  client.close();
  server.close();
}

TEST(SocketLoopback, ServerEndIsReceiveOnly) {
  SocketServer server;
  EXPECT_THROW(server.send("nope"), TransportError);
  server.close();
}

TEST(SocketLoopback, SendAfterCloseThrows) {
  SocketServer server;
  SocketClient client(client_config(server, "vm-0"));
  client.close();
  client.close();  // idempotent
  EXPECT_THROW(client.send("late"), TransportError);
  server.close();
  server.close();  // idempotent
}

TEST(SocketLoopback, CloseReturnsQuicklyWithOpenConnections) {
  const auto started = std::chrono::steady_clock::now();
  {
    SocketServer server;
    auto raw = TcpStream::connect("127.0.0.1", server.port(), 1000);
    ASSERT_TRUE(raw.valid());
    raw.write_all(encode_frame(FrameType::kHello, 0, "lingerer"), 1000);
    wait_until([&] { return server.connections() >= 1; },
               std::chrono::milliseconds(3000));
    server.close();
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            4000)
      << "close() must unblock the accept and reader threads promptly";
}

TEST(SocketProtocol, DataBeforeHelloDropsConnection) {
  SocketServer server;
  auto raw = TcpStream::connect("127.0.0.1", server.port(), 1000);
  raw.write_all(encode_frame(FrameType::kData, 0, "no hello"), 1000);

  EXPECT_TRUE(wait_until(
      [&] { return server.stats().malformed_frames >= 1; },
      std::chrono::milliseconds(5000)));
  // The server hangs up on protocol violators.
  std::string sink;
  EXPECT_TRUE(wait_until(
      [&] {
        return raw.read_some(sink, 256, 50) == IoStatus::kClosed;
      },
      std::chrono::milliseconds(5000)));
  EXPECT_EQ(server.stats().pending_frames, 0u);
  server.close();
}

TEST(SocketProtocol, ReassemblesFrameSplitAcrossWrites) {
  SocketServer server;
  auto raw = TcpStream::connect("127.0.0.1", server.port(), 1000);
  raw.write_all(encode_frame(FrameType::kHello, 0, "splitter"), 1000);

  const std::string frame = encode_frame(FrameType::kData, 0, "two halves");
  const std::size_t half = frame.size() / 2;
  raw.write_all(std::string_view(frame).substr(0, half), 1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  raw.write_all(std::string_view(frame).substr(half), 1000);

  std::vector<std::string> got;
  EXPECT_TRUE(wait_until(
      [&] {
        for (auto& p : server.drain()) got.push_back(std::move(p));
        return !got.empty();
      },
      std::chrono::milliseconds(5000)));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "two halves");
  server.close();
}

TEST(SocketProtocol, MidFrameDisconnectIsAbsorbed) {
  SocketServer server;
  {
    auto raw = TcpStream::connect("127.0.0.1", server.port(), 1000);
    raw.write_all(encode_frame(FrameType::kHello, 0, "quitter"), 1000);
    const std::string frame = encode_frame(FrameType::kData, 0, "never lands");
    raw.write_prefix(frame, frame.size() / 2, 1000);
    // raw's destructor closes the socket mid-frame.
  }
  wait_until([&] { return server.connections() == 0; },
             std::chrono::milliseconds(5000));
  EXPECT_TRUE(server.drain().empty())
      << "a partial frame must never surface as a payload";

  // The server keeps serving: a well-behaved client still gets through.
  SocketClient client(client_config(server, "survivor"));
  client.send("after the storm");
  EXPECT_TRUE(client.flush(5000));
  std::vector<std::string> got;
  wait_until(
      [&] {
        for (auto& p : server.drain()) got.push_back(std::move(p));
        return !got.empty();
      },
      std::chrono::milliseconds(5000));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "after the storm");
  client.close();
  server.close();
}

TEST(SocketOverload, BusyWhenQueueFullThenRecovers) {
  SocketServerConfig server_config;
  server_config.transport.queue_bound = 2;
  SocketServer server(server_config);
  SocketClient client(client_config(server, "flooder"));

  std::vector<std::string> sent;
  for (int i = 0; i < 6; ++i) {
    sent.push_back("flood-" + std::to_string(i));
    client.send(sent.back());
  }
  // Nothing drains yet, so the queue must fill and the server must say
  // busy instead of buffering without bound.
  EXPECT_TRUE(wait_until(
      [&] {
        client.flush(10);
        return server.stats().overloads >= 1;
      },
      std::chrono::milliseconds(5000)));
  EXPECT_LE(server.stats().pending_frames, 2u);

  // Once the consumer drains, backed-off clients get everything through —
  // each payload exactly once.
  std::vector<std::string> got;
  EXPECT_TRUE(wait_until(
      [&] {
        client.flush(10);
        for (auto& p : server.drain()) got.push_back(std::move(p));
        return got.size() >= sent.size();
      },
      std::chrono::milliseconds(10000)));
  std::sort(got.begin(), got.end());
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(got, sent);
  EXPECT_GE(client.stats().overloads, 1u) << "client observed kBusy";
  client.close();
  server.close();
}

TEST(SocketOverload, DuplicateDuringOverflowIsReAckedNotBounced) {
  // Regression: the server used to check the queue bound BEFORE dedup, so a
  // redelivered frame arriving while the queue was full was answered kBusy
  // — bouncing a frame the server had already settled, which kept the
  // client resending forever and (worse) broke "an ack means settled".
  // Dedup must screen first: a duplicate needs no queue space.
  SocketServerConfig server_config;
  server_config.transport.queue_bound = 1;
  SocketServer server(server_config);

  auto raw = TcpStream::connect("127.0.0.1", server.port(), 1000);
  ASSERT_TRUE(raw.valid());
  raw.write_all(encode_frame(FrameType::kHello, 0, "dup-overflow"), 1000);

  FrameDecoder decoder;
  std::string buffer;
  // Reads replies off the raw stream until one for `sequence` shows up.
  const auto next_reply_for = [&](std::uint64_t sequence) {
    Frame reply;
    const bool got = wait_until(
        [&] {
          buffer.clear();
          if (raw.read_some(buffer, 256, 50) == IoStatus::kOk) {
            decoder.feed(buffer);
          }
          while (auto frame = decoder.next()) {
            if (frame->sequence == sequence) {
              reply = *frame;
              return true;
            }
          }
          return false;
        },
        std::chrono::milliseconds(5000));
    EXPECT_TRUE(got) << "no reply for sequence " << sequence;
    return reply;
  };

  const std::string first = encode_frame(FrameType::kData, 0, "first");
  raw.write_all(first, 1000);
  EXPECT_EQ(next_reply_for(0).type, FrameType::kAck);
  // Nothing drains, so "first" now occupies the whole bounded queue.

  // Redelivery of the settled frame while the queue is full: must be
  // re-acked (and counted as a duplicate), never bounced as busy.
  raw.write_all(first, 1000);
  EXPECT_EQ(next_reply_for(0).type, FrameType::kAck);
  EXPECT_EQ(server.stats().duplicates, 1u);
  EXPECT_EQ(server.stats().overloads, 0u)
      << "a duplicate must not trip the overload path";

  // A genuinely new frame still bounces — the bound is intact.
  raw.write_all(encode_frame(FrameType::kData, 1, "second"), 1000);
  EXPECT_EQ(next_reply_for(1).type, FrameType::kBusy);
  EXPECT_GE(server.stats().overloads, 1u);

  // Queue drains exactly one copy; the bounced frame lands on resend.
  auto drained = server.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], "first");
  raw.write_all(encode_frame(FrameType::kData, 1, "second"), 1000);
  EXPECT_EQ(next_reply_for(1).type, FrameType::kAck);
  drained = server.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], "second");
  server.close();
}

TEST(SocketRecovery, TruncatedWriteForcesReconnectAndResend) {
  SocketServer server;
  auto config = client_config(server, "trunc");
  config.write_fault = [](std::uint64_t write_index) {
    WriteFault fault;
    if (write_index == 1) {
      fault.kind = WriteFault::Kind::kTruncateThenClose;
      fault.keep_bytes = 6;  // mid-header: the server sees a torn frame
    }
    return fault;
  };
  SocketClient client(config);

  std::vector<std::string> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back("frame-" + std::to_string(i));
    client.send(sent.back());
  }
  EXPECT_TRUE(client.flush(10000));
  EXPECT_GE(client.stats().reconnects, 1u);
  EXPECT_GE(client.stats().retransmits, 1u);

  std::vector<std::string> got;
  wait_until(
      [&] {
        for (auto& p : server.drain()) got.push_back(std::move(p));
        return got.size() >= sent.size();
      },
      std::chrono::milliseconds(5000));
  std::sort(got.begin(), got.end());
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(got, sent) << "every frame exactly once despite the torn write";
  client.close();
  server.close();
}

TEST(SocketRecovery, DroppedWriteRecoversViaAckTimeout) {
  SocketServer server;
  auto config = client_config(server, "dropper");
  config.transport.ack_timeout_ms = 60;
  config.write_fault = [](std::uint64_t write_index) {
    WriteFault fault;
    if (write_index == 0) fault.kind = WriteFault::Kind::kDrop;
    return fault;
  };
  SocketClient client(config);

  std::vector<std::string> sent = {"lost-once", "clean-1", "clean-2"};
  for (const auto& payload : sent) client.send(payload);
  EXPECT_TRUE(client.flush(10000))
      << "the overdue ack must force a reconnect-and-resend";
  EXPECT_GE(client.stats().retransmits, 1u);

  std::vector<std::string> got;
  wait_until(
      [&] {
        for (auto& p : server.drain()) got.push_back(std::move(p));
        return got.size() >= sent.size();
      },
      std::chrono::milliseconds(5000));
  std::sort(got.begin(), got.end());
  std::sort(sent.begin(), sent.end());
  EXPECT_EQ(got, sent);
  client.close();
  server.close();
}

// ------------------------------------------------------- acceptance e2e --

/// Synthetic application changesets dense enough to pass quantity
/// inference (30 creates inside one second >> hot_bucket_records), with
/// per-app distinctive paths so the model separates them cleanly. Synthetic
/// keeps 1000-report classification cheap enough for the TSan lane.
fs::Changeset app_changeset(std::size_t app, bool labeled) {
  fs::Changeset cs;
  cs.set_open_time(1000);
  for (int i = 0; i < 30; ++i) {
    cs.add(fs::ChangeRecord{"/opt/app" + std::to_string(app) + "/bin/tool" +
                                std::to_string(i),
                            0755, fs::ChangeKind::kCreate, 1000 + i});
  }
  if (labeled) cs.add_label("app-" + std::to_string(app));
  cs.close(2000);
  return cs;
}

constexpr std::size_t kApps = 8;
constexpr std::size_t kAgents = 4;
constexpr std::size_t kReportsPerAgent = 250;

class NetEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    std::vector<fs::Changeset> train;
    for (std::size_t app = 0; app < kApps; ++app) {
      train.push_back(app_changeset(app, true));
    }
    std::vector<const fs::Changeset*> pointers;
    for (const auto& cs : train) pointers.push_back(&cs);
    model_ = new core::Praxi();
    model_->train_changesets(pointers);
  }

  static void TearDownTestSuite() { delete model_; }

  using DiscoveryKey =
      std::tuple<std::string, std::uint64_t, std::vector<std::string>>;

  static std::vector<DiscoveryKey> sorted_keys(
      std::vector<service::Discovery> discoveries) {
    std::vector<DiscoveryKey> keys;
    keys.reserve(discoveries.size());
    for (auto& d : discoveries) {
      keys.emplace_back(std::move(d.agent_id), d.sequence,
                        std::move(d.applications));
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  static core::Praxi* model_;
};

core::Praxi* NetEndToEndTest::model_ = nullptr;

TEST_F(NetEndToEndTest, FourFaultyAgentsThousandReportsZeroLossZeroDup) {
  // Pre-build every wire so agent threads only push bytes.
  std::vector<std::vector<std::string>> wires(kAgents);
  for (std::size_t a = 0; a < kAgents; ++a) {
    for (std::size_t seq = 0; seq < kReportsPerAgent; ++seq) {
      ChangesetReport report;
      report.agent_id = "agent-" + std::to_string(a);
      report.sequence = seq;
      report.changeset = app_changeset(seq % kApps, false);
      wires[a].push_back(report.to_wire());
    }
  }

  // Reference: the same fleet through the in-memory bus.
  std::vector<DiscoveryKey> reference;
  {
    service::MessageBus bus;
    for (const auto& agent_wires : wires) {
      for (const auto& wire : agent_wires) bus.send(wire);
    }
    service::DiscoveryServer ref_server(*model_, {});
    reference = sorted_keys(ref_server.process(bus));
    ASSERT_EQ(ref_server.processed(), kAgents * kReportsPerAgent);
  }

  // Socket run, with per-agent deterministic faults: drops, torn writes,
  // forced disconnects, and refused connection attempts.
  SocketServerConfig server_config;
  server_config.transport.queue_bound = 512;
  SocketServer transport(server_config);
  service::DiscoveryServer server(*model_, {});

  std::atomic<int> unsettled{0};
  std::vector<std::thread> agents;
  agents.reserve(kAgents);
  for (std::size_t a = 0; a < kAgents; ++a) {
    agents.emplace_back([&, a] {
      auto config = client_config(transport, "agent-" + std::to_string(a));
      switch (a) {
        case 0:
          config.write_fault = [](std::uint64_t i) {
            WriteFault fault;
            if (i % 17 == 9) fault.kind = WriteFault::Kind::kDrop;
            return fault;
          };
          break;
        case 1:
          config.write_fault = [](std::uint64_t i) {
            WriteFault fault;
            if (i % 23 == 5) {
              fault.kind = WriteFault::Kind::kTruncateThenClose;
              fault.keep_bytes = 7;
            }
            return fault;
          };
          break;
        case 2:
          config.write_fault = [](std::uint64_t i) {
            WriteFault fault;
            if (i % 31 == 3) {
              fault.kind = WriteFault::Kind::kDisconnectBeforeWrite;
            }
            return fault;
          };
          break;
        default:
          config.write_fault = [](std::uint64_t i) {
            WriteFault fault;
            if (i % 29 == 11) fault.kind = WriteFault::Kind::kDrop;
            return fault;
          };
          config.connect_fault = [](std::uint64_t attempt) {
            return attempt % 7 == 2;  // refuse some reconnect attempts
          };
          break;
      }
      SocketClient client(config);
      for (const auto& wire : wires[a]) client.send(wire);
      if (!client.flush(60000)) unsettled.fetch_add(1);
      client.close();
    });
  }

  // The consumer loop: classify whatever has arrived, repeatedly, exactly
  // as `praxi-cli serve` does.
  std::vector<service::Discovery> discoveries;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (server.processed() < kAgents * kReportsPerAgent &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& d : server.process(transport)) {
      discoveries.push_back(std::move(d));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& agent : agents) agent.join();
  for (auto& d : server.process(transport)) discoveries.push_back(std::move(d));
  transport.close();

  EXPECT_EQ(unsettled.load(), 0) << "every agent must settle all its reports";
  EXPECT_EQ(server.processed(), kAgents * kReportsPerAgent)
      << "zero acknowledged reports lost";
  EXPECT_EQ(server.duplicates(), 0u)
      << "transport dedup must hide redeliveries from the report layer";
  EXPECT_EQ(sorted_keys(std::move(discoveries)), reference)
      << "socket discoveries must be identical to the in-memory bus run";

  const auto stats = transport.stats();
  EXPECT_EQ(stats.delivered_frames, kAgents * kReportsPerAgent);
  EXPECT_GE(stats.reconnects + stats.duplicates + stats.retransmits, 0u);
}

}  // namespace
}  // namespace praxi::net
