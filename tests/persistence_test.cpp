// Persistence hardening tests (docs/PERSISTENCE.md):
//   * corruption injection — every serialized artifact, truncated at every
//     prefix length and scribbled with seeded random byte flips, must throw
//     SerializeError from its loader: never UB, a crash, or a giant
//     allocation;
//   * save/load equivalence — a reloaded model must continue online learning
//     byte-for-byte identically to one that was never saved;
//   * crash-safe files — a simulated crash between temp-write and rename
//     leaves the complete previous snapshot readable.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "core/praxi.hpp"
#include "core/tagset_store.hpp"
#include "fs/changeset.hpp"
#include "ml/kernel_svm.hpp"
#include "ml/online_learner.hpp"
#include "ml/word2vec.hpp"
#include "pkg/dataset.hpp"
#include "service/transport.hpp"

namespace praxi {
namespace {

// ---------------------------------------------------------------------------
// Small fixture artifacts (tiny learner tables keep blobs a few KB, so the
// exhaustive truncation sweep stays fast).
// ---------------------------------------------------------------------------

fs::Changeset make_changeset(const std::string& label,
                             const std::vector<std::string>& paths) {
  fs::Changeset cs;
  cs.set_open_time(1000);
  std::int64_t t = 1001;
  for (const auto& path : paths) {
    cs.add({path, 0644, fs::ChangeKind::kCreate, t++});
  }
  cs.close(t);
  cs.add_label(label);
  return cs;
}

std::vector<fs::Changeset> training_corpus() {
  return {
      make_changeset("nginx", {"/usr/sbin/nginx", "/etc/nginx/nginx.conf",
                               "/usr/lib/nginx/modules/mod_http.so"}),
      make_changeset("redis", {"/usr/bin/redis-server", "/etc/redis/redis.conf",
                               "/usr/lib/redis/modules/bloom.so"}),
      make_changeset("mysql", {"/usr/sbin/mysqld", "/etc/mysql/my.cnf",
                               "/var/lib/mysql/ibdata1"}),
  };
}

core::Praxi tiny_trained_praxi(core::LabelMode mode) {
  core::PraxiConfig config;
  config.mode = mode;
  config.learner.bits = 8;
  core::Praxi model(config);
  static const auto corpus = training_corpus();
  std::vector<const fs::Changeset*> pointers;
  for (const auto& cs : corpus) pointers.push_back(&cs);
  model.train_changesets(pointers);
  return model;
}

columbus::TagSet tiny_tagset() {
  columbus::TagSet ts;
  ts.tags = {{"nginx", 5}, {"nginx.conf", 2}, {"modules", 1}};
  ts.labels = {"nginx"};
  return ts;
}

/// One serialized artifact plus the loader that must reject corrupt bytes.
struct Artifact {
  std::string name;
  std::string bytes;
  std::function<void(std::string_view)> load;
};

std::vector<Artifact> all_artifacts() {
  std::vector<Artifact> artifacts;

  artifacts.push_back({"praxi-single",
                       tiny_trained_praxi(core::LabelMode::kSingleLabel).to_binary(),
                       [](std::string_view b) { core::Praxi::from_binary(b); }});
  artifacts.push_back({"praxi-multi",
                       tiny_trained_praxi(core::LabelMode::kMultiLabel).to_binary(),
                       [](std::string_view b) { core::Praxi::from_binary(b); }});

  ml::OnlineLearnerConfig learner_config;
  learner_config.bits = 8;
  ml::OaaClassifier oaa(learner_config);
  oaa.learn_one({{1, 1.0f}, {7, 0.5f}}, "nginx");
  oaa.learn_one({{2, 1.0f}, {9, 0.5f}}, "redis");
  artifacts.push_back(
      {"oaa", oaa.to_binary(),
       [](std::string_view b) { ml::OaaClassifier::from_binary(b); }});

  ml::CsoaaClassifier csoaa(learner_config);
  csoaa.learn_one({{1, 1.0f}, {7, 0.5f}}, {"nginx", "redis"});
  artifacts.push_back(
      {"csoaa", csoaa.to_binary(),
       [](std::string_view b) { ml::CsoaaClassifier::from_binary(b); }});

  artifacts.push_back(
      {"tagset", tiny_tagset().to_binary(),
       [](std::string_view b) { columbus::TagSet::from_binary(b); }});

  core::TagsetStore store;
  store.add(tiny_tagset());
  artifacts.push_back(
      {"tagset-store", store.to_binary(),
       [](std::string_view b) { core::TagsetStore::from_binary(b); }});

  const auto corpus = training_corpus();
  artifacts.push_back(
      {"changeset", corpus[0].to_binary(),
       [](std::string_view b) { fs::Changeset::from_binary(b); }});

  service::ChangesetReport report;
  report.agent_id = "vm-042";
  report.sequence = 7;
  report.changeset = corpus[1];
  artifacts.push_back(
      {"wire-report", report.to_wire(),
       [](std::string_view b) { service::ChangesetReport::from_wire(b); }});

  pkg::Dataset dataset;
  dataset.changesets = corpus;
  dataset.refresh_labels();
  artifacts.push_back(
      {"dataset", dataset.to_binary(),
       [](std::string_view b) { pkg::Dataset::from_binary(b); }});

  return artifacts;
}

// ---------------------------------------------------------------------------
// Corruption injection
// ---------------------------------------------------------------------------

TEST(CorruptionInjection, IntactArtifactsLoad) {
  for (const auto& artifact : all_artifacts()) {
    EXPECT_NO_THROW(artifact.load(artifact.bytes)) << artifact.name;
  }
}

TEST(CorruptionInjection, TruncationAtEveryPrefixRejected) {
  for (const auto& artifact : all_artifacts()) {
    const std::string_view bytes(artifact.bytes);
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
      EXPECT_THROW(artifact.load(bytes.substr(0, keep)), SerializeError)
          << artifact.name << " truncated to " << keep << " of "
          << bytes.size();
    }
  }
}

TEST(CorruptionInjection, SeededRandomByteFlipsRejected) {
  // Payload flips are error bursts of <= 8 bits, which CRC32C is guaranteed
  // to catch; header flips hit the magic/version/length/crc checks. So every
  // single-byte flip must throw — there is no lucky corruption.
  Rng rng(20260805);
  for (const auto& artifact : all_artifacts()) {
    for (int trial = 0; trial < 150; ++trial) {
      std::string dirty = artifact.bytes;
      const auto pos = static_cast<std::size_t>(rng.next() % dirty.size());
      const auto flip = static_cast<char>(1 + rng.next() % 255);
      dirty[pos] = static_cast<char>(dirty[pos] ^ flip);
      EXPECT_THROW(artifact.load(dirty), SerializeError)
          << artifact.name << " flip at " << pos;
    }
  }
}

TEST(CorruptionInjection, ArbitraryGarbageRejected) {
  Rng rng(42);
  const auto artifacts = all_artifacts();
  for (std::size_t len : {0u, 1u, 19u, 20u, 64u, 4096u}) {
    std::string garbage(len, '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.next() & 0xFF);
    for (const auto& artifact : artifacts) {
      EXPECT_THROW(artifact.load(garbage), SerializeError)
          << artifact.name << " len " << len;
    }
  }
}

// ---------------------------------------------------------------------------
// Fuzz-promoted regression cases (docs/STATIC_ANALYSIS.md)
//
// One hand-minimized crasher per decoder family, in CHECKSUM-VALID form:
// the payload is mutated and then re-sealed with a fresh CRC, so these
// inputs sail through the envelope checks and attack the per-format
// decoding logic directly — the corruption class the byte-flip suite above
// can never reach (CRC rejects every flip first). Each case pins down a
// hostile-field bug class fixed during PR 2's hardening; the fuzz harnesses
// under fuzz/ mutate from these same shapes continuously.
// ---------------------------------------------------------------------------

/// Re-seals `snapshot` after `mutate` edits its payload, recomputing the
/// CRC so the result is structurally valid right up to the format decoder.
std::string reseal_mutated(std::string_view snapshot,
                           const std::function<void(std::string&)>& mutate) {
  BinaryReader r(snapshot);
  const auto magic = r.get<std::uint32_t>();
  const auto version = r.get<std::uint32_t>();
  std::string payload(snapshot.substr(kSnapshotHeaderBytes));
  mutate(payload);
  return seal_snapshot(magic, version, payload);
}

template <typename T>
void overwrite(std::string& payload, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), payload.size());
  std::memcpy(payload.data() + offset, &value, sizeof(T));
}

TEST(FuzzRegression, PraxiRejectsBadLabelModeByte) {
  // PRX1: mode byte 9 selected an out-of-range LabelMode.
  const auto bad = reseal_mutated(
      tiny_trained_praxi(core::LabelMode::kSingleLabel).to_binary(),
      [](std::string& p) { overwrite<std::uint8_t>(p, 0, 9); });
  EXPECT_THROW(core::Praxi::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, OaaRejectsWeightTableBitsAboveThirty) {
  // POA1: bits=31 once shifted 1<<31 into signed UB before any bound check.
  ml::OnlineLearnerConfig config;
  config.bits = 8;
  ml::OaaClassifier oaa(config);
  oaa.learn_one({{1, 1.0f}}, "nginx");
  const auto bad = reseal_mutated(oaa.to_binary(), [](std::string& p) {
    overwrite<std::uint32_t>(p, 0, 31);
  });
  EXPECT_THROW(ml::OaaClassifier::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, CsoaaRejectsZeroWeightTableBits) {
  // PCS2: bits=0 made the weight table a single slot every hash hit.
  ml::OnlineLearnerConfig config;
  config.bits = 8;
  ml::CsoaaClassifier csoaa(config);
  csoaa.learn_one({{1, 1.0f}}, {"nginx"});
  const auto bad = reseal_mutated(csoaa.to_binary(), [](std::string& p) {
    overwrite<std::uint32_t>(p, 0, 0);
  });
  EXPECT_THROW(ml::CsoaaClassifier::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, ChangesetRejectsHostileRecordCount) {
  // PCS1: a record count claiming ~2^64 entries must be bounded by the
  // bytes actually present, not allocated. Offset: open/close times (16) +
  // closed byte (1) + label count (4) + "nginx" (4 + 5).
  const auto cs = make_changeset("nginx", {"/usr/sbin/nginx"});
  const auto bad = reseal_mutated(cs.to_binary(), [](std::string& p) {
    overwrite<std::uint64_t>(p, 30, ~std::uint64_t{0});
  });
  EXPECT_THROW(fs::Changeset::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, TagSetRejectsHostileLabelCount) {
  // PTG1: label count 2^32-1 with a few dozen payload bytes behind it.
  const auto bad = reseal_mutated(tiny_tagset().to_binary(),
                                  [](std::string& p) {
                                    overwrite<std::uint32_t>(p, 0,
                                                             0xFFFFFFFFu);
                                  });
  EXPECT_THROW(columbus::TagSet::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, TagsetStoreRejectsHostileEntryCount) {
  // PTS1: entry count u64 at payload offset 0.
  core::TagsetStore store;
  store.add(tiny_tagset());
  const auto bad = reseal_mutated(store.to_binary(), [](std::string& p) {
    overwrite<std::uint64_t>(p, 0, ~std::uint64_t{0});
  });
  EXPECT_THROW(core::TagsetStore::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, DatasetRejectsHostileChangesetCount) {
  // PDS1: changeset count u64 at payload offset 0.
  pkg::Dataset dataset;
  dataset.changesets = training_corpus();
  dataset.refresh_labels();
  const auto bad = reseal_mutated(dataset.to_binary(), [](std::string& p) {
    overwrite<std::uint64_t>(p, 0, ~std::uint64_t{0});
  });
  EXPECT_THROW(pkg::Dataset::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, Word2VecRejectsHostileVocabCount) {
  // PW2V: vocab count u32 after the 40-byte config block.
  ml::Word2VecConfig config;
  config.dim = 4;
  config.min_count = 1;
  config.epochs = 1;
  ml::Word2Vec w2v(config);
  w2v.train({{"usr", "sbin", "nginx"}, {"usr", "bin", "redis"}});
  const auto bad = reseal_mutated(w2v.to_binary(), [](std::string& p) {
    overwrite<std::uint32_t>(p, 40, 0xFFFFFFFFu);
  });
  EXPECT_THROW(ml::Word2Vec::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, SvmRejectsHostileSupportVectorCount) {
  // PSV1: support-vector count u64 after the 48-byte config block.
  ml::RbfSvmConfig config;
  config.epochs = 1;
  ml::RbfSvmOva svm(config);
  svm.train({{1.0f, 0.0f}, {0.0f, 1.0f}}, {{0u}, {1u}}, 2);
  const auto bad = reseal_mutated(svm.to_binary(), [](std::string& p) {
    overwrite<std::uint64_t>(p, 48, ~std::uint64_t{0});
  });
  EXPECT_THROW(ml::RbfSvmOva::from_binary(bad), SerializeError);
}

TEST(FuzzRegression, WireReportRejectsHostileAgentIdLength) {
  // PRPT: agent-id string length u32 at payload offset 0 pointing far past
  // the frame; peek_agent_id must also stay noexcept-silent on it.
  service::ChangesetReport report;
  report.agent_id = "vm-042";
  report.sequence = 7;
  report.changeset = make_changeset("redis", {"/usr/bin/redis-server"});
  const auto bad = reseal_mutated(report.to_wire(), [](std::string& p) {
    overwrite<std::uint32_t>(p, 0, 0x7FFFFFFFu);
  });
  EXPECT_THROW(service::ChangesetReport::from_wire(bad), SerializeError);
  EXPECT_EQ(service::ChangesetReport::peek_agent_id(bad), "");
}

// ---------------------------------------------------------------------------
// Save/load equivalence under continued online learning
// ---------------------------------------------------------------------------

class SaveLoadLearnEquivalence
    : public ::testing::TestWithParam<core::LabelMode> {};

TEST_P(SaveLoadLearnEquivalence, ReloadedModelLearnsIdentically) {
  core::Praxi original = tiny_trained_praxi(GetParam());
  core::Praxi reloaded = core::Praxi::from_binary(original.to_binary());

  // Feed the SAME feedback to both, then they must agree label-for-label on
  // every prediction — and byte-for-byte on their snapshots.
  const auto feedback = make_changeset(
      "haproxy", {"/usr/sbin/haproxy", "/etc/haproxy/haproxy.cfg"});
  original.learn_one(original.extract_tags(feedback));
  reloaded.learn_one(reloaded.extract_tags(feedback));

  const auto probes = training_corpus();
  const auto original_snap = original.snapshot();
  const auto reloaded_snap = reloaded.snapshot();
  for (const auto& cs : probes) {
    EXPECT_EQ(original_snap->predict(cs, 2), reloaded_snap->predict(cs, 2));
  }
  EXPECT_EQ(original_snap->predict(feedback, 1),
            reloaded_snap->predict(feedback, 1));
  EXPECT_EQ(original.to_binary(), reloaded.to_binary());
}

INSTANTIATE_TEST_SUITE_P(BothModes, SaveLoadLearnEquivalence,
                         ::testing::Values(core::LabelMode::kSingleLabel,
                                           core::LabelMode::kMultiLabel));

// ---------------------------------------------------------------------------
// Crash-safe files
// ---------------------------------------------------------------------------

TEST(CrashSafety, ModelSurvivesCrashDuringResave) {
  namespace stdfs = std::filesystem;
  const auto dir = stdfs::temp_directory_path() / "praxi_persistence_crash";
  stdfs::create_directories(dir);
  const std::string path = (dir / "model.praxi").string();

  core::Praxi model = tiny_trained_praxi(core::LabelMode::kSingleLabel);
  const std::string snapshot_a = model.to_binary();
  write_file_atomic(path, snapshot_a);

  model.learn_one(tiny_tagset());
  testhooks::simulate_crash_before_rename = true;
  EXPECT_THROW(write_file_atomic(path, model.to_binary()), SerializeError);
  testhooks::simulate_crash_before_rename = false;

  // After the "crash", the file still loads — and is exactly snapshot A.
  EXPECT_EQ(read_file(path), snapshot_a);
  EXPECT_NO_THROW(core::Praxi::from_binary(read_file(path)));

  write_file_atomic(path, model.to_binary());
  EXPECT_EQ(read_file(path), model.to_binary());
  stdfs::remove_all(dir);
}

TEST(CrashSafety, TagsetStoreFileRoundTripAndCorruptionDetected) {
  namespace stdfs = std::filesystem;
  const auto dir = stdfs::temp_directory_path() / "praxi_persistence_store";
  stdfs::create_directories(dir);
  const std::string path = (dir / "store.bin").string();

  core::TagsetStore store;
  store.add(tiny_tagset());
  store.save(path);
  const auto loaded = core::TagsetStore::load(path);
  EXPECT_EQ(loaded.size(), 1u);

  // Flip one byte on disk: load() must detect it, not return a wrong store.
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  write_file(path, bytes);
  EXPECT_THROW(core::TagsetStore::load(path), SerializeError);
  stdfs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// CLI surfaces load failures with path + offset/reason
// ---------------------------------------------------------------------------

TEST(CliDiagnostics, CorruptModelFileReportsPathAndReason) {
  namespace stdfs = std::filesystem;
  const std::string path =
      (stdfs::temp_directory_path() / "praxi_cli_corrupt.model").string();
  std::string bytes =
      tiny_trained_praxi(core::LabelMode::kSingleLabel).to_binary();
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x01);
  write_file(path, bytes);

  std::ostringstream out, err;
  const int rc = cli::run({"inspect", "--model", path}, out, err);
  EXPECT_EQ(rc, 1);
  const std::string message = err.str();
  EXPECT_NE(message.find("cannot load model"), std::string::npos) << message;
  EXPECT_NE(message.find(path), std::string::npos) << message;
  std::remove(path.c_str());
}

TEST(CliDiagnostics, TruncatedModelFileReportsOffset) {
  namespace stdfs = std::filesystem;
  const std::string path =
      (stdfs::temp_directory_path() / "praxi_cli_truncated.model").string();
  const std::string bytes =
      tiny_trained_praxi(core::LabelMode::kSingleLabel).to_binary();
  write_file(path, bytes.substr(0, 10));

  std::ostringstream out, err;
  const int rc = cli::run({"predict", "--model", path, "/nonexistent"}, out,
                          err);
  EXPECT_EQ(rc, 1);
  // The reader embeds the failing byte offset in its message.
  EXPECT_NE(err.str().find("at byte"), std::string::npos) << err.str();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace praxi
