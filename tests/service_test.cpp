// Tests for the distributed discovery service (src/service): wire format,
// message bus, collection agents, and the central server — including the
// online feedback loop that makes new packages discoverable without retrain.
#include <gtest/gtest.h>

#include <memory>

#include "common/serialize.hpp"
#include "eval/harness.hpp"
#include "pkg/dataset.hpp"
#include "pkg/installer.hpp"
#include "pkg/noise.hpp"
#include "service/agent.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace praxi::service {
namespace {

fs::Changeset sample_changeset(const std::string& label) {
  fs::Changeset cs;
  cs.set_open_time(100);
  for (int i = 0; i < 5; ++i) {
    cs.add(fs::ChangeRecord{"/usr/bin/" + label + std::to_string(i), 0755,
                            fs::ChangeKind::kCreate, 100 + i});
  }
  if (!label.empty()) cs.add_label(label);
  cs.close(200);
  return cs;
}

TEST(ChangesetReport, WireRoundTrip) {
  ChangesetReport report;
  report.agent_id = "vm-042";
  report.sequence = 7;
  report.changeset = sample_changeset("nginx");
  const ChangesetReport parsed = ChangesetReport::from_wire(report.to_wire());
  EXPECT_EQ(parsed.agent_id, "vm-042");
  EXPECT_EQ(parsed.sequence, 7u);
  EXPECT_EQ(parsed.changeset, report.changeset);
}

TEST(ChangesetReport, RejectsGarbage) {
  EXPECT_THROW(ChangesetReport::from_wire("not a report"), SerializeError);
  EXPECT_THROW(ChangesetReport::from_wire(""), SerializeError);
}

TEST(MessageBus, FifoAndAccounting) {
  MessageBus bus;
  bus.send("first");
  bus.send("second-longer");
  EXPECT_EQ(bus.stats().pending_frames, 2u);
  EXPECT_EQ(bus.stats().sent_frames, 2u);
  EXPECT_EQ(bus.stats().sent_bytes, 5u + 13u);
  const auto drained = bus.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], "first");
  EXPECT_EQ(drained[1], "second-longer");
  EXPECT_EQ(bus.stats().pending_frames, 0u);
  EXPECT_TRUE(bus.drain().empty());
}

/// Shared trained model + catalog for the integration tests.
class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new pkg::Catalog(pkg::Catalog::subset(42, 10, 0));
    pkg::DatasetBuilder builder(*catalog_, 7);
    pkg::CollectOptions options;
    options.samples_per_app = 5;
    const auto dataset = builder.collect_dirty(options);
    model_ = new core::Praxi();
    model_->train_changesets(eval::pointers(dataset));
  }

  static void TearDownTestSuite() {
    delete catalog_;
    delete model_;
  }

  static pkg::Catalog* catalog_;
  static core::Praxi* model_;
};

pkg::Catalog* ServiceTest::catalog_ = nullptr;
core::Praxi* ServiceTest::model_ = nullptr;

TEST_F(ServiceTest, ServerRequiresTrainedModel) {
  EXPECT_THROW(DiscoveryServer(core::Praxi{}), std::invalid_argument);
}

TEST_F(ServiceTest, AgentShipsWindowsOnInterval) {
  auto clock = fs::make_clock();
  fs::InMemoryFilesystem instance(clock);
  pkg::provision_base_image(instance);
  MessageBus bus;
  AgentConfig config;
  config.interval_s = 60.0;
  config.boundary_guard_s = 0.0;
  CollectionAgent agent("vm-1", instance, bus, config);

  instance.create_file("/opt/x/file");
  clock->advance_s(61.0);
  EXPECT_TRUE(agent.poll());
  EXPECT_EQ(bus.stats().pending_frames, 1u);
  EXPECT_EQ(agent.shipped(), 1u);

  // Quiet window: nothing shipped.
  clock->advance_s(61.0);
  EXPECT_FALSE(agent.poll());
  EXPECT_EQ(bus.stats().pending_frames, 1u);
}

TEST_F(ServiceTest, AgentGuardHoldsDenseActivity) {
  auto clock = fs::make_clock();
  fs::InMemoryFilesystem instance(clock);
  pkg::provision_base_image(instance);
  MessageBus bus;
  AgentConfig config;
  config.interval_s = 30.0;
  CollectionAgent agent("vm-1", instance, bus, config);

  clock->advance_s(29.0);
  for (int i = 0; i < 10; ++i) {
    instance.create_file("/opt/burst/f" + std::to_string(i));
  }
  clock->advance_s(2.0);
  EXPECT_FALSE(agent.poll()) << "dense activity at the boundary must hold";
  clock->advance_s(11.0);
  EXPECT_TRUE(agent.poll());
}

TEST_F(ServiceTest, EndToEndFleetDiscovery) {
  MessageBus bus;
  DiscoveryServer server(*model_, {});

  // Three instances, each with its own agent; installs on two of them.
  struct Instance {
    fs::SimClockPtr clock;
    std::unique_ptr<fs::InMemoryFilesystem> filesystem;
    std::unique_ptr<pkg::Installer> installer;
    std::unique_ptr<CollectionAgent> agent;
  };
  std::vector<Instance> fleet;
  for (int v = 0; v < 3; ++v) {
    Instance instance;
    instance.clock = fs::make_clock();
    instance.filesystem =
        std::make_unique<fs::InMemoryFilesystem>(instance.clock);
    pkg::provision_base_image(*instance.filesystem);
    instance.installer = std::make_unique<pkg::Installer>(
        *instance.filesystem, *catalog_, Rng(static_cast<std::uint64_t>(100 + v)));
    AgentConfig config;
    config.interval_s = 60.0;
    instance.agent = std::make_unique<CollectionAgent>(
        "vm-" + std::to_string(v), *instance.filesystem, bus, config);
    fleet.push_back(std::move(instance));
  }

  const std::string app0 = catalog_->repository_names()[0];
  const std::string app1 = catalog_->repository_names()[6];
  fleet[0].installer->install(app0);
  fleet[2].installer->install(app0);
  for (auto& instance : fleet) {
    instance.clock->advance_s(120.0);
    instance.agent->poll();
  }
  // A later window on vm-2 sees a second installation.
  fleet[2].installer->install(app1);
  for (auto& instance : fleet) {
    instance.clock->advance_s(120.0);
    instance.agent->poll();
  }
  const auto discoveries = server.process(bus);

  EXPECT_EQ(discoveries.size(), 3u);  // vm-1 stayed quiet throughout
  const auto agents = server.agents_running(app0);
  EXPECT_EQ(agents, (std::vector<std::string>{"vm-0", "vm-2"}));
  ASSERT_EQ(server.inventory().count("vm-2"), 1u);
  EXPECT_TRUE(server.inventory().at("vm-2").count(app1));
  EXPECT_EQ(server.processed(), 3u);
  EXPECT_GT(server.store().size(), 0u);
}

TEST_F(ServiceTest, MalformedMessagesSkippedNotFatal) {
  MessageBus bus;
  DiscoveryServer server(*model_, {});
  bus.send("garbage bytes");
  ChangesetReport good;
  good.agent_id = "vm-9";
  good.sequence = 1;
  good.changeset = sample_changeset("whatever");
  bus.send(good.to_wire());

  EXPECT_NO_THROW(server.process(bus));
  EXPECT_EQ(server.malformed(), 1u);
  EXPECT_EQ(server.processed(), 1u);
}

TEST_F(ServiceTest, NoiseOnlyWindowsProduceNoInventory) {
  MessageBus bus;
  DiscoveryServer server(*model_, {});

  auto clock = fs::make_clock();
  fs::InMemoryFilesystem instance(clock);
  pkg::provision_base_image(instance);
  pkg::NoiseMix noise = pkg::NoiseMix::baseline(Rng(5));
  AgentConfig config;
  config.interval_s = 60.0;
  CollectionAgent agent("vm-n", instance, bus, config);

  for (int i = 0; i < 120; ++i) {
    clock->advance_s(1.0);
    noise.tick(instance, 1.0);
  }
  agent.poll();
  const auto discoveries = server.process(bus);
  EXPECT_TRUE(discoveries.empty());
  EXPECT_EQ(server.inventory().count("vm-n"), 0u);
}

TEST_F(ServiceTest, FeedbackTeachesNewPackageOnline) {
  MessageBus bus;
  DiscoveryServer server(*model_, {});

  // A package OUTSIDE the trained label set appears in the fleet.
  const pkg::Catalog big = pkg::Catalog::subset(42, 12, 0);
  const std::string newcomer = big.repository_names()[11];
  ASSERT_FALSE(catalog_->contains(newcomer));

  auto make_changeset = [&](std::uint64_t seed) {
    auto clock = fs::make_clock();
    fs::InMemoryFilesystem instance(clock);
    pkg::provision_base_image(instance);
    pkg::Installer installer(instance, big, Rng(seed));
    fs::ChangesetRecorder recorder(instance);
    installer.install(newcomer);
    return recorder.eject({newcomer});
  };

  // Operator confirms a few labeled samples -> online updates, no retrain.
  for (std::uint64_t s = 0; s < 6; ++s) {
    server.learn_feedback(make_changeset(s));
  }

  // The next sighting is identified.
  fs::Changeset unseen = make_changeset(99);
  ChangesetReport report;
  report.agent_id = "vm-new";
  report.sequence = 1;
  report.changeset = unseen;
  bus.send(report.to_wire());
  const auto discoveries = server.process(bus);
  ASSERT_EQ(discoveries.size(), 1u);
  ASSERT_FALSE(discoveries[0].applications.empty());
  EXPECT_EQ(discoveries[0].applications.front(), newcomer);
}

TEST_F(ServiceTest, FeedbackRequiresLabels) {
  DiscoveryServer server(*model_, {});
  EXPECT_THROW(server.learn_feedback(sample_changeset("")),
               std::invalid_argument);
}

TEST_F(ServiceTest, FeedbackCardinalityMustMatchModelMode) {
  // A single-label (OAA) server must refuse multi-labeled feedback BEFORE
  // any learning mutates the model.
  DiscoveryServer server(*model_, {});
  ASSERT_EQ(server.model().mode(), core::LabelMode::kSingleLabel);
  fs::Changeset two;
  two.set_open_time(100);
  two.add(fs::ChangeRecord{"/usr/bin/a", 0755, fs::ChangeKind::kCreate, 101});
  two.add_label("nginx");
  two.add_label("redis");
  two.close(200);
  const std::string before = server.model().to_binary();
  EXPECT_THROW(server.learn_feedback(two), std::invalid_argument);
  EXPECT_EQ(server.model().to_binary(), before) << "model mutated on reject";
}

TEST(ChangesetReport, PeekAgentIdSurvivesPayloadCorruption) {
  ChangesetReport report;
  report.agent_id = "vm-peek";
  report.sequence = 3;
  report.changeset = sample_changeset("nginx");
  std::string wire = report.to_wire();
  // Corrupt a payload byte well past the id: from_wire must reject the
  // frame, yet peek still attributes it to the sender.
  wire[wire.size() - 2] = static_cast<char>(wire[wire.size() - 2] ^ 0x40);
  EXPECT_THROW(ChangesetReport::from_wire(wire), SerializeError);
  EXPECT_EQ(ChangesetReport::peek_agent_id(wire), "vm-peek");
  EXPECT_EQ(ChangesetReport::peek_agent_id("random junk"), "");
  EXPECT_EQ(ChangesetReport::peek_agent_id(""), "");
}

TEST_F(ServiceTest, IngestStatsAttributeCorruptionPerAgent) {
  MessageBus bus;
  DiscoveryServer server(*model_, {});

  ChangesetReport good;
  good.agent_id = "vm-healthy";
  good.sequence = 1;
  good.changeset = sample_changeset("nginx");
  bus.send(good.to_wire());

  // vm-flaky delivers one clean report and one with a flipped payload byte.
  ChangesetReport flaky = good;
  flaky.agent_id = "vm-flaky";
  bus.send(flaky.to_wire());
  std::string corrupt = flaky.to_wire();
  corrupt[corrupt.size() - 1] = static_cast<char>(corrupt.back() ^ 0x01);
  bus.send(corrupt);

  // Total garbage: not attributable to anyone.
  bus.send("garbage that is not a frame");

  EXPECT_NO_THROW(server.process(bus));
  EXPECT_EQ(server.processed(), 2u);
  EXPECT_EQ(server.malformed(), 2u);
  EXPECT_EQ(server.version_mismatched(), 0u);

  const auto& stats = server.ingest_stats();
  ASSERT_EQ(stats.count("vm-healthy"), 1u);
  EXPECT_EQ(stats.at("vm-healthy").processed, 1u);
  EXPECT_EQ(stats.at("vm-healthy").malformed, 0u);
  ASSERT_EQ(stats.count("vm-flaky"), 1u);
  EXPECT_EQ(stats.at("vm-flaky").processed, 1u);
  EXPECT_EQ(stats.at("vm-flaky").malformed, 1u);
  ASSERT_EQ(stats.count(DiscoveryServer::kUnattributedAgent), 1u);
  EXPECT_EQ(stats.at(DiscoveryServer::kUnattributedAgent).malformed, 1u);
}

TEST_F(ServiceTest, VersionSkewCountedSeparatelyFromCorruption) {
  MessageBus bus;
  DiscoveryServer server(*model_, {});

  ChangesetReport report;
  report.agent_id = "vm-upgraded";
  report.sequence = 1;
  report.changeset = sample_changeset("nginx");
  std::string wire = report.to_wire();
  // The version field is bytes [4, 8) of the envelope header; the CRC does
  // not cover the header, so bumping it yields a structurally sound frame
  // from "the future" — VersionError, not corruption.
  wire[4] = static_cast<char>(wire[4] + 1);
  bus.send(wire);

  EXPECT_NO_THROW(server.process(bus));
  EXPECT_EQ(server.version_mismatched(), 1u);
  EXPECT_EQ(server.malformed(), 0u);
  EXPECT_EQ(server.processed(), 0u);
  const auto& stats = server.ingest_stats();
  ASSERT_EQ(stats.count("vm-upgraded"), 1u);
  EXPECT_EQ(stats.at("vm-upgraded").version_mismatch, 1u);
}

}  // namespace
}  // namespace praxi::service
