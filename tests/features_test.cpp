// Tests for feature hashing (ml/features.hpp).
#include "ml/features.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace praxi::ml {
namespace {

using Tokens = std::vector<std::pair<std::string, float>>;

TEST(FeatureHasher, Deterministic) {
  FeatureHasher hasher(18);
  const Tokens tokens{{"mysql", 3.0f}, {"mysqld", 1.0f}};
  EXPECT_EQ(hasher.hash(tokens), hasher.hash(tokens));
}

TEST(FeatureHasher, IndicesWithinSpace) {
  FeatureHasher hasher(10);
  Tokens tokens;
  for (int i = 0; i < 500; ++i) {
    tokens.emplace_back("token" + std::to_string(i), 1.0f);
  }
  for (const Feature& f : hasher.hash(tokens)) {
    EXPECT_LT(f.index, hasher.space_size());
  }
}

TEST(FeatureHasher, OutputSortedAndUnique) {
  FeatureHasher hasher(8);  // tiny space forces collisions
  Tokens tokens;
  for (int i = 0; i < 1000; ++i) {
    tokens.emplace_back("t" + std::to_string(i), 1.0f);
  }
  const FeatureVector features = hasher.hash(tokens);
  for (std::size_t i = 1; i < features.size(); ++i) {
    EXPECT_LT(features[i - 1].index, features[i].index);
  }
}

TEST(FeatureHasher, CollisionsSumValues) {
  FeatureHasher hasher(18);
  const Tokens tokens{{"same", 2.0f}, {"same", 3.0f}};
  const FeatureVector features = hasher.hash(tokens);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_FLOAT_EQ(features[0].value, 5.0f);
}

TEST(FeatureHasher, TotalMassConserved) {
  FeatureHasher hasher(6);
  Tokens tokens;
  float total = 0.0f;
  for (int i = 0; i < 300; ++i) {
    tokens.emplace_back("w" + std::to_string(i), 1.0f);
    total += 1.0f;
  }
  float hashed_total = 0.0f;
  for (const Feature& f : hasher.hash(tokens)) hashed_total += f.value;
  EXPECT_FLOAT_EQ(hashed_total, total);
}

TEST(FeatureHasher, EmptyInput) {
  FeatureHasher hasher(18);
  EXPECT_TRUE(hasher.hash(Tokens{}).empty());
}

TEST(FeatureHasher, BadBitsThrow) {
  EXPECT_THROW(FeatureHasher(0), std::invalid_argument);
  EXPECT_THROW(FeatureHasher(31), std::invalid_argument);
}

TEST(FeatureHasher, DifferentSeedsRemapTokens) {
  FeatureHasher a(18, 0), b(18, 1);
  EXPECT_NE(a.index_of("mysql"), b.index_of("mysql"));
}

TEST(L2Normalize, UnitNorm) {
  FeatureVector v{{1, 3.0f}, {5, 4.0f}};
  l2_normalize(v);
  EXPECT_FLOAT_EQ(v[0].value, 0.6f);
  EXPECT_FLOAT_EQ(v[1].value, 0.8f);
  double norm = 0;
  for (const auto& f : v) norm += double(f.value) * f.value;
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(L2Normalize, ZeroVectorUntouched) {
  FeatureVector v{{1, 0.0f}};
  l2_normalize(v);
  EXPECT_FLOAT_EQ(v[0].value, 0.0f);
  FeatureVector empty;
  l2_normalize(empty);
  EXPECT_TRUE(empty.empty());
}

// Property sweep over hash widths: hashing must preserve enough information
// that distinct small token sets map to distinct vectors.
class HasherWidthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(HasherWidthSweep, DistinctTokenSetsDistinctVectors) {
  FeatureHasher hasher(GetParam());
  const auto a = hasher.hash(Tokens{{"mysql", 1.0f}, {"mysqld", 1.0f}});
  const auto b = hasher.hash(Tokens{{"nginx", 1.0f}, {"nginxctl", 1.0f}});
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(Widths, HasherWidthSweep,
                         ::testing::Values(8u, 12u, 18u, 22u, 26u));

}  // namespace
}  // namespace praxi::ml
