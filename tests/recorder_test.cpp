// Tests for the changeset recorder daemon (fs/recorder.hpp): recording,
// exclusion prefixes, pause/resume, and eject semantics (paper §III-A).
#include "fs/recorder.hpp"

#include <gtest/gtest.h>

namespace praxi::fs {
namespace {

class RecorderTest : public ::testing::Test {
 protected:
  RecorderTest() : clock_(make_clock(10'000)), fs_(clock_) {}

  SimClockPtr clock_;
  InMemoryFilesystem fs_;
};

TEST_F(RecorderTest, RecordsAllKindsOfChanges) {
  ChangesetRecorder recorder(fs_);
  fs_.create_file("/etc/app/app.conf");
  fs_.write_file("/etc/app/app.conf", 10);
  fs_.remove("/etc/app/app.conf");
  const Changeset cs = recorder.eject({"app"});
  // create /etc, /etc/app, file; modify; delete.
  EXPECT_EQ(cs.size(), 5u);
  EXPECT_EQ(cs.labels(), (std::vector<std::string>{"app"}));
  EXPECT_TRUE(cs.closed());
}

TEST_F(RecorderTest, ExcludesSpecialTreesByDefault) {
  ChangesetRecorder recorder(fs_);
  fs_.create_file("/proc/1234/status");
  fs_.create_file("/dev/sda1");
  fs_.create_file("/sys/kernel/something");
  fs_.create_file("/usr/bin/real");
  const Changeset cs = recorder.eject();
  for (const auto& rec : cs.records()) {
    EXPECT_EQ(rec.path.find("/proc"), std::string::npos);
    EXPECT_EQ(rec.path.find("/dev"), std::string::npos);
    EXPECT_EQ(rec.path.find("/sys"), std::string::npos);
  }
  // /usr, /usr/bin, /usr/bin/real survive.
  EXPECT_EQ(cs.size(), 3u);
}

TEST_F(RecorderTest, CustomExclusions) {
  ChangesetRecorder recorder(fs_, {"/var/log"});
  fs_.create_file("/var/log/syslog");
  fs_.create_file("/var/lib/data");
  const Changeset cs = recorder.eject();
  for (const auto& rec : cs.records()) {
    EXPECT_FALSE(rec.path.rfind("/var/log", 0) == 0) << rec.path;
  }
}

TEST_F(RecorderTest, PauseResumeGatesRecording) {
  ChangesetRecorder recorder(fs_);
  recorder.pause();
  fs_.create_file("/ignored");
  EXPECT_EQ(recorder.pending_records(), 0u);
  recorder.resume();
  fs_.create_file("/captured");
  EXPECT_EQ(recorder.pending_records(), 1u);
}

TEST_F(RecorderTest, EjectOpensFreshChangeset) {
  ChangesetRecorder recorder(fs_);
  fs_.create_file("/first");
  clock_->advance_ms(5000);
  const Changeset first = recorder.eject({"one"});
  EXPECT_EQ(first.open_time_ms(), 10'000);
  EXPECT_EQ(first.close_time_ms(), 15'000);

  fs_.create_file("/second");
  const Changeset second = recorder.eject({"two"});
  EXPECT_EQ(second.open_time_ms(), 15'000);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(second.records()[0].path, "/second");
}

TEST_F(RecorderTest, EjectEmptyChangesetIsValid) {
  ChangesetRecorder recorder(fs_);
  const Changeset cs = recorder.eject();
  EXPECT_TRUE(cs.empty());
  EXPECT_TRUE(cs.closed());
}

TEST_F(RecorderTest, DestructorUnsubscribes) {
  {
    ChangesetRecorder recorder(fs_);
    fs_.create_file("/during");
  }
  // No crash on events after the recorder is gone.
  fs_.create_file("/after");
  SUCCEED();
}

TEST_F(RecorderTest, TwoRecordersCaptureIndependently) {
  ChangesetRecorder a(fs_);
  ChangesetRecorder b(fs_, {"/var"});
  fs_.create_file("/var/lib/x");
  fs_.create_file("/usr/y");
  const Changeset cs_a = a.eject();
  const Changeset cs_b = b.eject();
  EXPECT_GT(cs_a.size(), cs_b.size());
}

}  // namespace
}  // namespace praxi::fs
