// Tests for the binary serialization helpers (common/serialize.hpp).
#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace praxi {
namespace {

TEST(BinaryRoundTrip, Primitives) {
  BinaryWriter w;
  w.put<std::uint32_t>(0xDEADBEEFu);
  w.put<std::int64_t>(-42);
  w.put<float>(3.5f);
  w.put<double>(-2.25);
  w.put<std::uint8_t>(7);

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get<float>(), 3.5f);
  EXPECT_EQ(r.get<double>(), -2.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, StringsIncludingEmptyAndBinary) {
  BinaryWriter w;
  w.put_string("");
  w.put_string("mysql-server");
  w.put_string(std::string("\0\x01\xff", 3));

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "mysql-server");
  EXPECT_EQ(r.get_string(), std::string("\0\x01\xff", 3));
}

TEST(BinaryRoundTrip, Vectors) {
  BinaryWriter w;
  w.put_vector(std::vector<float>{1.0f, -2.0f, 0.5f});
  w.put_vector(std::vector<std::uint64_t>{});

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get_vector<float>(), (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_TRUE(r.get_vector<std::uint64_t>().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryReader, ThrowsOnTruncatedPrimitive) {
  BinaryWriter w;
  w.put<std::uint32_t>(1);
  BinaryReader r(std::string_view(w.bytes()).substr(0, 2));
  EXPECT_THROW(r.get<std::uint32_t>(), SerializeError);
}

TEST(BinaryReader, ThrowsOnTruncatedString) {
  BinaryWriter w;
  w.put_string("long-enough-string");
  BinaryReader r(std::string_view(w.bytes()).substr(0, 6));
  EXPECT_THROW(r.get_string(), SerializeError);
}

TEST(BinaryReader, ThrowsOnAbsurdVectorLength) {
  BinaryWriter w;
  w.put<std::uint64_t>(1ull << 60);  // vector "length"
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.get_vector<float>(), SerializeError);
}

TEST(BinaryReader, RemainingTracksPosition) {
  BinaryWriter w;
  w.put<std::uint32_t>(5);
  w.put<std::uint32_t>(6);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(FileIo, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "praxi_serialize_test.bin")
          .string();
  const std::string payload("binary\0payload", 14);
  write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
  std::remove(path.c_str());
}

TEST(FileIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/praxi/file.bin"), SerializeError);
}

TEST(FileIo, WriteToBadPathThrows) {
  EXPECT_THROW(write_file("/nonexistent-dir-xyz/file.bin", "data"),
               SerializeError);
}

}  // namespace
}  // namespace praxi
