// Tests for the binary serialization helpers (common/serialize.hpp):
// reader/writer primitives, the CRC32C implementation, the snapshot
// envelope, and the (atomic) file IO layer.
#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/hash.hpp"

namespace praxi {
namespace {

TEST(BinaryRoundTrip, Primitives) {
  BinaryWriter w;
  w.put<std::uint32_t>(0xDEADBEEFu);
  w.put<std::int64_t>(-42);
  w.put<float>(3.5f);
  w.put<double>(-2.25);
  w.put<std::uint8_t>(7);

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get<float>(), 3.5f);
  EXPECT_EQ(r.get<double>(), -2.25);
  EXPECT_EQ(r.get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, StringsIncludingEmptyAndBinary) {
  BinaryWriter w;
  w.put_string("");
  w.put_string("mysql-server");
  w.put_string(std::string("\0\x01\xff", 3));

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "mysql-server");
  EXPECT_EQ(r.get_string(), std::string("\0\x01\xff", 3));
}

TEST(BinaryRoundTrip, Vectors) {
  BinaryWriter w;
  w.put_vector(std::vector<float>{1.0f, -2.0f, 0.5f});
  w.put_vector(std::vector<std::uint64_t>{});

  BinaryReader r(w.bytes());
  EXPECT_EQ(r.get_vector<float>(), (std::vector<float>{1.0f, -2.0f, 0.5f}));
  EXPECT_TRUE(r.get_vector<std::uint64_t>().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryReader, ThrowsOnTruncatedPrimitive) {
  BinaryWriter w;
  w.put<std::uint32_t>(1);
  BinaryReader r(std::string_view(w.bytes()).substr(0, 2));
  EXPECT_THROW(r.get<std::uint32_t>(), SerializeError);
}

TEST(BinaryReader, ThrowsOnTruncatedString) {
  BinaryWriter w;
  w.put_string("long-enough-string");
  BinaryReader r(std::string_view(w.bytes()).substr(0, 6));
  EXPECT_THROW(r.get_string(), SerializeError);
}

TEST(BinaryReader, ThrowsOnAbsurdVectorLength) {
  BinaryWriter w;
  w.put<std::uint64_t>(1ull << 60);  // vector "length"
  BinaryReader r(w.bytes());
  EXPECT_THROW(r.get_vector<float>(), SerializeError);
}

TEST(BinaryReader, RemainingTracksPosition) {
  BinaryWriter w;
  w.put<std::uint32_t>(5);
  w.put<std::uint32_t>(6);
  BinaryReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(BinaryReader, RequireEndRejectsTrailingBytes) {
  BinaryWriter w;
  w.put<std::uint32_t>(1);
  w.put<std::uint8_t>(0);
  BinaryReader r(w.bytes());
  r.get<std::uint32_t>();
  EXPECT_THROW(r.require_end("artifact"), SerializeError);
}

TEST(BinaryReader, ErrorsCarryTheFailingOffset) {
  BinaryWriter w;
  w.put<std::uint32_t>(7);
  BinaryReader r(w.bytes());
  r.get<std::uint32_t>();
  try {
    r.get<std::uint64_t>();  // nothing left
    FAIL() << "expected SerializeError";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("at byte 4"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32c, KnownAnswerVector) {
  // The standard CRC-32C check value (RFC 3720 appendix / iSCSI).
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(crc32c(""), 0u); }

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string a = "praxi-snapshot-";
  const std::string b = "payload-bytes";
  EXPECT_EQ(crc32c(b, crc32c(a)), crc32c(a + b));
}

TEST(Crc32c, EveryScribbledByteChangesTheChecksum) {
  const std::string base(64, '\x5a');
  const auto clean = crc32c(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (unsigned flip : {0x01u, 0x80u, 0xFFu}) {
      std::string dirty = base;
      dirty[i] =
          static_cast<char>(static_cast<unsigned char>(dirty[i]) ^ flip);
      EXPECT_NE(crc32c(dirty), clean) << "offset " << i << " flip " << flip;
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot envelope
// ---------------------------------------------------------------------------

constexpr std::uint32_t kTestMagic = 0x54455354u;  // "TSET"

TEST(SnapshotEnvelope, SealOpenRoundTrip) {
  const std::string payload("envelope\0payload", 16);
  const std::string sealed = seal_snapshot(kTestMagic, 3, payload);
  EXPECT_EQ(sealed.size(), kSnapshotHeaderBytes + payload.size());
  const Snapshot snap = open_snapshot(sealed, kTestMagic, 1, 5);
  EXPECT_EQ(snap.version, 3u);
  EXPECT_EQ(snap.payload, payload);
}

TEST(SnapshotEnvelope, EmptyPayloadRoundTrips) {
  const std::string sealed = seal_snapshot(kTestMagic, 1, "");
  EXPECT_EQ(open_snapshot(sealed, kTestMagic, 1, 1).payload, "");
}

TEST(SnapshotEnvelope, WrongMagicRejected) {
  const std::string sealed = seal_snapshot(kTestMagic, 1, "x");
  EXPECT_THROW(open_snapshot(sealed, kTestMagic + 1, 1, 1), SerializeError);
}

TEST(SnapshotEnvelope, VersionOutsideRangeThrowsVersionError) {
  const std::string too_new = seal_snapshot(kTestMagic, 9, "x");
  const std::string too_old = seal_snapshot(kTestMagic, 1, "x");
  EXPECT_THROW(open_snapshot(too_new, kTestMagic, 2, 4), VersionError);
  EXPECT_THROW(open_snapshot(too_old, kTestMagic, 2, 4), VersionError);
  try {
    open_snapshot(too_new, kTestMagic, 2, 4);
  } catch (const VersionError& e) {
    EXPECT_EQ(e.found(), 9u);
  }
  // ...but an in-range version is not a VersionError even if corrupt later.
  EXPECT_NO_THROW(open_snapshot(too_old, kTestMagic, 1, 1));
}

TEST(SnapshotEnvelope, TruncationAtEveryPrefixRejected) {
  const std::string sealed = seal_snapshot(kTestMagic, 1, "payload-bytes");
  for (std::size_t keep = 0; keep < sealed.size(); ++keep) {
    EXPECT_THROW(
        open_snapshot(std::string_view(sealed).substr(0, keep), kTestMagic, 1,
                      1),
        SerializeError)
        << "kept " << keep << " of " << sealed.size();
  }
}

TEST(SnapshotEnvelope, TrailingByteRejected) {
  std::string sealed = seal_snapshot(kTestMagic, 1, "payload");
  sealed.push_back('\0');
  EXPECT_THROW(open_snapshot(sealed, kTestMagic, 1, 1), SerializeError);
}

TEST(SnapshotEnvelope, EveryPossibleByteFlipRejected) {
  // Header flips hit the magic/version/length/crc checks; payload flips are
  // error bursts of <= 8 bits, which CRC32C detects unconditionally. So a
  // corrupted snapshot NEVER opens, regardless of where the damage lands.
  const std::string sealed = seal_snapshot(kTestMagic, 1, "payload-bytes");
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    for (unsigned flip : {0x01u, 0x10u, 0xFFu}) {
      std::string dirty = sealed;
      dirty[i] =
          static_cast<char>(static_cast<unsigned char>(dirty[i]) ^ flip);
      EXPECT_THROW(open_snapshot(dirty, kTestMagic, 1, 1), SerializeError)
          << "offset " << i << " flip " << flip;
    }
  }
}

// ---------------------------------------------------------------------------
// File IO
// ---------------------------------------------------------------------------

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FileIo, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "praxi_serialize_test.bin")
          .string();
  const std::string payload("binary\0payload", 14);
  write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
  std::remove(path.c_str());
}

TEST(FileIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/praxi/file.bin"), SerializeError);
}

TEST(FileIo, WriteToBadPathThrows) {
  EXPECT_THROW(write_file("/nonexistent-dir-xyz/file.bin", "data"),
               SerializeError);
}

TEST(FileIo, ReadDirectoryThrows) {
  EXPECT_THROW(read_file(std::filesystem::temp_directory_path().string()),
               SerializeError);
}

TEST(FileIo, AtomicWriteRoundTripsAndOverwrites) {
  const std::string path = temp_path("praxi_atomic_test.bin");
  const std::string first("first\0snapshot", 14);
  const std::string second("second-snapshot-longer-than-the-first");
  write_file_atomic(path, first);
  EXPECT_EQ(read_file(path), first);
  write_file_atomic(path, second);
  EXPECT_EQ(read_file(path), second);
  std::remove(path.c_str());
}

TEST(FileIo, AtomicWriteToBadPathThrows) {
  EXPECT_THROW(write_file_atomic("/nonexistent-dir-xyz/file.bin", "data"),
               SerializeError);
}

TEST(FileIo, AtomicWriteLeavesNoTempFileOnSuccess) {
  namespace stdfs = std::filesystem;
  const auto dir = stdfs::temp_directory_path() / "praxi_atomic_clean";
  stdfs::create_directories(dir);
  write_file_atomic((dir / "model.bin").string(), "bytes");
  std::size_t entries = 0;
  for (const auto& entry : stdfs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "model.bin");
  }
  EXPECT_EQ(entries, 1u);
  stdfs::remove_all(dir);
}

TEST(FileIo, CrashBeforeRenameKeepsCompleteOldSnapshot) {
  namespace stdfs = std::filesystem;
  const auto dir = stdfs::temp_directory_path() / "praxi_atomic_crash";
  stdfs::create_directories(dir);
  const std::string path = (dir / "model.bin").string();
  const std::string old_snapshot = "complete-old-snapshot";
  write_file_atomic(path, old_snapshot);

  // "Crash" after the temp file is durable but before the rename commits.
  testhooks::simulate_crash_before_rename = true;
  EXPECT_THROW(write_file_atomic(path, "half-committed-new-snapshot"),
               SerializeError);
  testhooks::simulate_crash_before_rename = false;

  // The destination still holds the COMPLETE old contents, and the aborted
  // attempt is visible only as a stale temp file loaders never touch.
  EXPECT_EQ(read_file(path), old_snapshot);
  std::size_t stale = 0;
  for (const auto& entry : stdfs::directory_iterator(dir)) {
    const auto name = entry.path().filename().string();
    if (name != "model.bin") {
      EXPECT_EQ(name.rfind("model.bin.tmp.", 0), 0u) << name;
      ++stale;
    }
  }
  EXPECT_EQ(stale, 1u);

  // A later, uninterrupted save commits the new snapshot normally.
  write_file_atomic(path, "new-snapshot");
  EXPECT_EQ(read_file(path), "new-snapshot");
  stdfs::remove_all(dir);
}

}  // namespace
}  // namespace praxi
