// Tests for the tagset store (core/tagset_store.hpp).
#include "core/tagset_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace praxi::core {
namespace {

columbus::TagSet make_tagset(const std::string& label, int ntags) {
  columbus::TagSet ts;
  for (int i = 0; i < ntags; ++i) {
    ts.tags.push_back({label + "-tag" + std::to_string(i),
                       std::uint32_t(ntags - i + 1)});
  }
  ts.labels = {label};
  return ts;
}

TEST(TagsetStore, AddAndCount) {
  TagsetStore store;
  EXPECT_TRUE(store.empty());
  store.add(make_tagset("mysql-server", 5));
  store.add(make_tagset("nginx", 3));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.empty());
}

TEST(TagsetStore, AddAllMoves) {
  TagsetStore store;
  std::vector<columbus::TagSet> batch{make_tagset("a", 2),
                                      make_tagset("b", 2)};
  store.add_all(std::move(batch));
  EXPECT_EQ(store.size(), 2u);
}

TEST(TagsetStore, TotalBytesSumsTagsets) {
  TagsetStore store;
  const auto ts = make_tagset("x", 4);
  store.add(ts);
  store.add(ts);
  EXPECT_EQ(store.total_bytes(), 2 * ts.size_bytes());
}

TEST(TagsetStore, TextRoundTrip) {
  TagsetStore store;
  store.add(make_tagset("mysql-server", 5));
  store.add(make_tagset("nginx", 3));
  const TagsetStore parsed = TagsetStore::from_text(store.to_text());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.tagsets()[0], store.tagsets()[0]);
  EXPECT_EQ(parsed.tagsets()[1], store.tagsets()[1]);
}

TEST(TagsetStore, EmptyRoundTrip) {
  const TagsetStore parsed = TagsetStore::from_text(TagsetStore{}.to_text());
  EXPECT_TRUE(parsed.empty());
}

TEST(TagsetStore, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "praxi_store_test.txt")
          .string();
  TagsetStore store;
  store.add(make_tagset("redis-server", 7));
  store.save(path);
  const TagsetStore loaded = TagsetStore::load(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.tagsets()[0], store.tagsets()[0]);
  std::remove(path.c_str());
}

TEST(TagsetStore, StorageIsFractionOfChangesets) {
  // The storage argument of §III-B: tagsets are tiny next to changesets.
  TagsetStore store;
  for (int i = 0; i < 100; ++i) store.add(make_tagset("app", 25));
  EXPECT_LT(store.total_bytes(), 100u * 1024u);
}

}  // namespace
}  // namespace praxi::core
