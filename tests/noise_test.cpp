// Tests for the background-noise daemons (pkg/noise.hpp).
#include "pkg/noise.hpp"

#include <gtest/gtest.h>

#include "fs/recorder.hpp"
#include "pkg/installer.hpp"

namespace praxi::pkg {
namespace {

class NoiseTest : public ::testing::Test {
 protected:
  NoiseTest() : clock_(fs::make_clock()), fs_(clock_) {
    provision_base_image(fs_);
  }

  /// Runs `source` for `seconds` of simulated time and returns the records.
  fs::Changeset run(NoiseSource& source, double seconds) {
    fs::ChangesetRecorder recorder(fs_);
    double remaining = seconds;
    while (remaining > 0.0) {
      clock_->advance_s(1.0);
      source.tick(fs_, 1.0);
      remaining -= 1.0;
    }
    return recorder.eject();
  }

  fs::SimClockPtr clock_;
  fs::InMemoryFilesystem fs_;
};

TEST_F(NoiseTest, LogRotationWritesUnderVarLog) {
  LogRotationNoise noise(Rng(1));
  const auto cs = run(noise, 120.0);
  EXPECT_FALSE(cs.empty());
  for (const auto& rec : cs.records()) {
    EXPECT_EQ(rec.path.rfind("/var/log", 0), 0u) << rec.path;
  }
}

TEST_F(NoiseTest, CacheChurnStaysUnderVarCache) {
  CacheChurnNoise noise(Rng(2));
  const auto cs = run(noise, 120.0);
  EXPECT_FALSE(cs.empty());
  for (const auto& rec : cs.records()) {
    EXPECT_EQ(rec.path.rfind("/var/cache", 0), 0u) << rec.path;
  }
}

TEST_F(NoiseTest, WebServerProducesLogsAndCacheCycling) {
  WebServerNoise noise(Rng(3));
  const auto cs = run(noise, 180.0);
  bool logs = false, cache_create = false, cache_delete = false;
  for (const auto& rec : cs.records()) {
    logs |= rec.path.rfind("/var/log/caddy", 0) == 0;
    if (rec.path.rfind("/var/cache/caddy", 0) == 0) {
      cache_create |= rec.kind == fs::ChangeKind::kCreate;
      cache_delete |= rec.kind == fs::ChangeKind::kDelete;
    }
  }
  EXPECT_TRUE(logs);
  EXPECT_TRUE(cache_create);
  EXPECT_TRUE(cache_delete);
}

TEST_F(NoiseTest, MongoTouchesDatabaseFiles) {
  MongoNoise noise(Rng(4));
  const auto cs = run(noise, 120.0);
  bool db_files = false;
  for (const auto& rec : cs.records()) {
    EXPECT_EQ(rec.path.rfind("/var/lib/couchdb", 0), 0u) << rec.path;
    db_files |= rec.path.find(".couch") != std::string::npos ||
                rec.path.find("compact") != std::string::npos;
  }
  EXPECT_TRUE(db_files);
}

TEST_F(NoiseTest, BrowserChurnsProfileAndCache) {
  BrowserNoise noise(Rng(5));
  const auto cs = run(noise, 120.0);
  bool profile = false, cache = false;
  for (const auto& rec : cs.records()) {
    profile |= rec.path.find(".mozilla") != std::string::npos;
    cache |= rec.path.find(".cache/mozilla") != std::string::npos;
  }
  EXPECT_TRUE(profile);
  EXPECT_TRUE(cache);
}

TEST_F(NoiseTest, RandomScriptCreatesShortLivedFiles) {
  RandomScriptNoise noise(Rng(6));
  const auto cs = run(noise, 120.0);
  bool created = false, deleted = false;
  for (const auto& rec : cs.records()) {
    created |= rec.kind == fs::ChangeKind::kCreate;
    deleted |= rec.kind == fs::ChangeKind::kDelete;
  }
  EXPECT_TRUE(created);
  EXPECT_TRUE(deleted);
}

TEST_F(NoiseTest, MixesAreDeterministicPerSeed) {
  auto run_mix = [](std::uint64_t seed) {
    auto clock = fs::make_clock();
    fs::InMemoryFilesystem filesystem(clock);
    provision_base_image(filesystem);
    NoiseMix mix = NoiseMix::dirtier(Rng(seed));
    fs::ChangesetRecorder recorder(filesystem);
    for (int i = 0; i < 60; ++i) {
      clock->advance_s(1.0);
      mix.tick(filesystem, 1.0);
    }
    return recorder.eject();
  };
  EXPECT_EQ(run_mix(11), run_mix(11));
  EXPECT_NE(run_mix(11), run_mix(12));
}

TEST_F(NoiseTest, DirtierMixIsNoisierThanBaseline) {
  NoiseMix baseline = NoiseMix::baseline(Rng(7));
  NoiseMix dirtier = NoiseMix::dirtier(Rng(7));
  const auto cs_base = run(baseline, 60.0);
  const auto cs_dirty = run(dirtier, 60.0);
  EXPECT_GT(cs_dirty.size(), cs_base.size());
}

}  // namespace
}  // namespace praxi::pkg
