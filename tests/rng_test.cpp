// Tests for the deterministic Rng (common/rng.hpp).
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace praxi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, StreamTagDecorrelates) {
  Rng a(42, "installer"), b(42, "noise");
  EXPECT_NE(a.next(), b.next());
  // ... but the same tag reproduces.
  Rng c(42, "installer"), d(42, "installer");
  EXPECT_EQ(c.next(), d.next());
}

class RngBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundsTest, BelowStaysInRange) {
  const std::uint64_t bound = GetParam();
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(bound), bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundsTest,
                         ::testing::Values(1ull, 2ull, 3ull, 10ull, 83ull,
                                           1000ull, 1ull << 40));

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::vector<bool> seen(10, false);
  for (int i = 0; i < 2000; ++i) seen[rng.below(10)] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.5, 7.5);
    EXPECT_GE(u, 2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedPickFollowsWeights) {
  Rng rng(29);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(Rng, WorksWithStdShuffle) {
  std::vector<int> v1{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> v2 = v1;
  Rng a(31), b(31);
  std::shuffle(v1.begin(), v1.end(), a);
  std::shuffle(v2.begin(), v2.end(), b);
  EXPECT_EQ(v1, v2);  // same seed, same permutation
}

}  // namespace
}  // namespace praxi
