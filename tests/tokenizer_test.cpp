// Tests for the Columbus path tokenizer (columbus/tokenizer.hpp).
#include "columbus/tokenizer.hpp"

#include <gtest/gtest.h>

namespace praxi::columbus {
namespace {

TEST(Tokenizer, SplitsPathIntoSegments) {
  Tokenizer tokenizer(std::vector<std::string>{});  // no filtering
  EXPECT_EQ(tokenizer.tokenize("/etc/mysql/conf.d"),
            (std::vector<std::string>{"etc", "mysql", "conf.d"}));
}

TEST(Tokenizer, RemovesSystemTokens) {
  Tokenizer tokenizer;
  // The paper's example: /etc/mysql/conf.d keeps only "mysql" (etc is a
  // system token; conf.d is packaging boilerplate).
  EXPECT_EQ(tokenizer.tokenize("/etc/mysql/conf.d"),
            (std::vector<std::string>{"mysql"}));
  EXPECT_EQ(tokenizer.tokenize("/usr/bin/mysqldump"),
            (std::vector<std::string>{"mysqldump"}));
}

TEST(Tokenizer, DropsSingleCharactersAndNumbers) {
  Tokenizer tokenizer(std::vector<std::string>{});
  // "a" and "5" are single characters; "12345" is pure digits.
  EXPECT_EQ(tokenizer.tokenize("/a/5/12345/x9/file"),
            (std::vector<std::string>{"x9", "file"}));
}

TEST(Tokenizer, DropsPunctuationOnlySegments) {
  Tokenizer tokenizer(std::vector<std::string>{});
  EXPECT_EQ(tokenizer.tokenize("/pkg/1.2.3/__/name"),
            (std::vector<std::string>{"pkg", "name"}));
}

TEST(Tokenizer, LowercasesTokens) {
  Tokenizer tokenizer(std::vector<std::string>{});
  EXPECT_EQ(tokenizer.tokenize("/Apps/MySQL"),
            (std::vector<std::string>{"apps", "mysql"}));
}

TEST(Tokenizer, IsSystemTokenMatchesFilterList) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.is_system_token("etc"));
  EXPECT_TRUE(tokenizer.is_system_token("usr"));
  EXPECT_TRUE(tokenizer.is_system_token("man1"));
  EXPECT_FALSE(tokenizer.is_system_token("mysql"));
}

TEST(Tokenizer, CustomFilterList) {
  Tokenizer tokenizer({"banana"});
  EXPECT_EQ(tokenizer.tokenize("/banana/apple"),
            (std::vector<std::string>{"apple"}));
}

TEST(Tokenizer, EmptyAndRootPaths) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.tokenize("").empty());
  EXPECT_TRUE(tokenizer.tokenize("/").empty());
  EXPECT_TRUE(tokenizer.tokenize("/usr/bin").empty());
}

}  // namespace
}  // namespace praxi::columbus
