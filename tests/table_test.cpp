// Tests for the text-table renderer (eval/table.hpp).
#include "eval/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace praxi::eval {
namespace {

TEST(TextTable, RendersHeaderSeparatorAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(TextTable, ColumnsAligned) {
  TextTable table({"a", "b"});
  table.add_row({"long-cell-content", "x"});
  table.add_row({"s", "y"});
  const std::string out = table.render();
  // "x" and "y" must start at the same column.
  std::istringstream lines(out);
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.find('x'), row2.find('y'));
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only-one"});
  EXPECT_EQ(table.rows(), 1u);
  EXPECT_NO_THROW(table.render());
}

TEST(TextTable, PrintWritesToStream) {
  TextTable table({"x"});
  table.add_row({"1"});
  std::ostringstream out;
  table.print(out);
  EXPECT_EQ(out.str(), table.render());
}

TEST(FmtPercent, Rounding) {
  EXPECT_EQ(fmt_percent(0.976), "97.6%");
  EXPECT_EQ(fmt_percent(1.0), "100.0%");
  EXPECT_EQ(fmt_percent(0.12345, 2), "12.35%");
  EXPECT_EQ(fmt_percent(0.0), "0.0%");
}

TEST(FmtDouble, Decimals) {
  EXPECT_EQ(fmt_double(3.14159), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt_double(-1.0, 1), "-1.0");
}

}  // namespace
}  // namespace praxi::eval
