// Durable ingest tests (docs/DURABILITY.md): WAL record/segment replay
// semantics on hostile bytes, the settle-order contract (process → WAL
// append → one batched fsync → ack), kill-at-every-byte-offset restarts
// converging bit-identically to the clean run, snapshot+truncate
// compaction, the crash-before-commit window (a classification failure must
// leave no acceptance trace), and idle-agent tracker eviction.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/serialize.hpp"
#include "core/praxi.hpp"
#include "obs/metrics.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"
#include "service/wal.hpp"

namespace praxi::service {
namespace {

namespace stdfs = std::filesystem;

// ------------------------------------------------------------ fixtures ----

fs::Changeset make_changeset(const std::string& label,
                             const std::vector<std::string>& paths) {
  fs::Changeset cs;
  cs.set_open_time(1000);
  std::int64_t t = 1001;
  for (const auto& path : paths) {
    cs.add({path, 0644, fs::ChangeKind::kCreate, t++});
  }
  cs.close(t);
  cs.add_label(label);
  return cs;
}

const std::vector<fs::Changeset>& training_corpus() {
  static const std::vector<fs::Changeset> corpus = {
      make_changeset("nginx", {"/usr/sbin/nginx", "/etc/nginx/nginx.conf",
                               "/usr/lib/nginx/modules/mod_http.so"}),
      make_changeset("redis", {"/usr/bin/redis-server", "/etc/redis/redis.conf",
                               "/usr/lib/redis/modules/bloom.so"}),
      make_changeset("mysql", {"/usr/sbin/mysqld", "/etc/mysql/my.cnf",
                               "/var/lib/mysql/ibdata1"}),
  };
  return corpus;
}

core::Praxi tiny_trained_praxi() {
  core::PraxiConfig config;
  config.learner.bits = 8;
  core::Praxi model(config);
  std::vector<const fs::Changeset*> pointers;
  for (const auto& cs : training_corpus()) pointers.push_back(&cs);
  model.train_changesets(pointers);
  return model;
}

/// Server config whose quantity screen accepts the tiny 3-file corpus
/// changesets (defaults would classify them as background noise).
ServerConfig tiny_server_config() {
  ServerConfig config;
  config.runtime.num_threads = 1;
  config.quantity.hot_bucket_records = 1;
  config.quantity.burst_min_records = 1;
  return config;
}

/// Fresh, self-deleting WAL directory.
struct TempWalDir {
  explicit TempWalDir(const std::string& tag)
      : path((stdfs::temp_directory_path() / ("praxi_wal_" + tag)).string()) {
    stdfs::remove_all(path);
    stdfs::create_directories(path);
  }
  ~TempWalDir() { stdfs::remove_all(path); }
  std::string path;
};

std::vector<ChangesetReport> make_reports(std::size_t agents,
                                          std::size_t per_agent) {
  const auto& corpus = training_corpus();
  std::vector<ChangesetReport> reports;
  std::size_t next = 0;
  for (std::size_t a = 0; a < agents; ++a) {
    for (std::size_t seq = 0; seq < per_agent; ++seq) {
      ChangesetReport report;
      report.agent_id = "vm-" + std::to_string(a);
      report.sequence = seq;
      report.changeset = corpus[next++ % corpus.size()];
      reports.push_back(std::move(report));
    }
  }
  return reports;
}

using DiscoveryKey =
    std::tuple<std::string, std::uint64_t, std::vector<std::string>>;

std::vector<DiscoveryKey> keyed(const std::vector<Discovery>& discoveries) {
  std::vector<DiscoveryKey> keys;
  keys.reserve(discoveries.size());
  for (const auto& d : discoveries) {
    keys.emplace_back(d.agent_id, d.sequence, d.applications);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// The count (observation total) of a praxi_wal_* histogram series for one
/// server label; 0 when the series does not exist.
std::uint64_t histogram_count(const std::string& name,
                              const std::string& server_label) {
  for (const auto& family : obs::MetricsRegistry::global().collect()) {
    if (family.name != name) continue;
    for (const auto& series : family.series) {
      for (const auto& [key, value] : series.labels) {
        if (key == "server" && value == server_label) return series.count;
      }
    }
  }
  return 0;
}

double gauge_value(const std::string& name, const std::string& server_label) {
  for (const auto& family : obs::MetricsRegistry::global().collect()) {
    if (family.name != name) continue;
    for (const auto& series : family.series) {
      for (const auto& [key, value] : series.labels) {
        if (key == "server" && value == server_label)
          return series.gauge_value;
      }
    }
  }
  return -1.0;
}

// ------------------------------------------------- replay unit semantics --

TEST(WalReplay, SettleRecordsFoldIntoFloor) {
  std::string bytes;
  bytes += encode_wal_settle("vm-0", 0, SettleOutcome::kProcessed);
  bytes += encode_wal_settle("vm-0", 2, SettleOutcome::kProcessed);
  bytes += encode_wal_settle("vm-1", 0, SettleOutcome::kProcessed);
  bytes += encode_wal_settle("vm-0", 1, SettleOutcome::kProcessed);

  WalState state;
  const auto result = replay_wal_segment(bytes, true, 1 << 20, state);
  EXPECT_EQ(result.records, 4u);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_EQ(result.valid_bytes, bytes.size());
  ASSERT_EQ(state.size(), 2u);
  EXPECT_EQ(state["vm-0"].floor, 3u);
  EXPECT_TRUE(state["vm-0"].held.empty());
  EXPECT_EQ(state["vm-1"].floor, 1u);
}

TEST(WalReplay, ReplayIsIdempotentPerRecord) {
  std::string bytes;
  for (int i = 0; i < 3; ++i) {
    bytes += encode_wal_settle("vm-0", 5, SettleOutcome::kProcessed);
  }
  WalState state;
  replay_wal_segment(bytes, true, 1 << 20, state);
  EXPECT_EQ(state["vm-0"].floor, 0u);
  EXPECT_EQ(state["vm-0"].held, (std::vector<std::uint64_t>{5}));
}

TEST(WalReplay, SnapshotRecordReplacesAccumulatedState) {
  WalState snapshot_state;
  snapshot_state["vm-7"].floor = 40;
  snapshot_state["vm-7"].held = {42, 45};

  std::string bytes;
  bytes += encode_wal_settle("vm-0", 0, SettleOutcome::kProcessed);
  bytes += encode_wal_snapshot(snapshot_state);
  bytes += encode_wal_settle("vm-7", 40, SettleOutcome::kProcessed);

  WalState state;
  const auto result = replay_wal_segment(bytes, true, 1 << 20, state);
  EXPECT_EQ(result.records, 3u);
  ASSERT_EQ(state.size(), 1u);  // vm-0 superseded by the snapshot
  EXPECT_EQ(state["vm-7"].floor, 41u);
  EXPECT_EQ(state["vm-7"].held, (std::vector<std::uint64_t>{42, 45}));
}

TEST(WalReplay, TornTailTruncatesOnlyTheLastSegment) {
  std::string bytes;
  bytes += encode_wal_settle("vm-0", 0, SettleOutcome::kProcessed);
  const std::size_t first_len = bytes.size();
  bytes += encode_wal_settle("vm-0", 1, SettleOutcome::kProcessed);

  for (std::size_t cut = first_len + 1; cut < bytes.size(); ++cut) {
    WalState state;
    const auto result =
        replay_wal_segment(bytes.substr(0, cut), true, 1 << 20, state);
    EXPECT_TRUE(result.torn_tail) << "cut=" << cut;
    EXPECT_EQ(result.records, 1u) << "cut=" << cut;
    EXPECT_EQ(result.valid_bytes, first_len) << "cut=" << cut;
    EXPECT_EQ(state["vm-0"].floor, 1u) << "cut=" << cut;

    WalState mid_state;
    EXPECT_THROW(replay_wal_segment(bytes.substr(0, cut), false, 1 << 20,
                                    mid_state),
                 SerializeError)
        << "cut=" << cut;
  }
}

TEST(WalReplay, MidSegmentCorruptionIsHardErrorWithOffset) {
  const std::string first = encode_wal_settle("vm-0", 0,
                                              SettleOutcome::kProcessed);
  std::string bytes = first;
  bytes += encode_wal_settle("vm-0", 1, SettleOutcome::kProcessed);

  // Flip one payload byte of the SECOND record: its bytes are all present,
  // so even as the last segment this is corruption, not a torn tail — and
  // the error carries the record's byte offset.
  std::string corrupt = bytes;
  corrupt[first.size() + kSnapshotHeaderBytes + 2] ^= 0x01;
  WalState state;
  try {
    replay_wal_segment(corrupt, true, 1 << 20, state);
    FAIL() << "corruption must throw";
  } catch (const SerializeError& e) {
    EXPECT_EQ(e.offset(), first.size());
  }
}

TEST(WalReplay, HostileLengthFieldRejectedBeforeAllocation) {
  std::string record = encode_wal_settle("vm-0", 0, SettleOutcome::kProcessed);
  // Claim a gigantic payload. The bound check must fire even on the last
  // segment (an append can shorten a record, never inflate its length).
  const std::uint64_t huge = 1ull << 60;
  std::memcpy(record.data() + 8, &huge, sizeof(huge));
  WalState state;
  EXPECT_THROW(replay_wal_segment(record, true, 1 << 20, state),
               SerializeError);
  EXPECT_THROW(replay_wal_segment(record, false, 1 << 20, state),
               SerializeError);
}

TEST(WalReplay, UnknownTypeOutcomeAndBadMagicRejected) {
  WalState state;

  BinaryWriter unknown_type;
  unknown_type.put<std::uint8_t>(9);
  const std::string bad_type = seal_snapshot(kWalRecordMagic,
                                             kWalRecordVersion,
                                             unknown_type.bytes());
  EXPECT_THROW(replay_wal_segment(bad_type, true, 1 << 20, state),
               SerializeError);

  std::string bad_outcome =
      encode_wal_settle("vm-0", 0, SettleOutcome::kProcessed);
  // Outcome byte is last; re-seal so only the decoder (not the CRC) trips.
  std::string payload(bad_outcome.substr(kSnapshotHeaderBytes));
  payload.back() = '\x7f';
  EXPECT_THROW(
      replay_wal_segment(
          seal_snapshot(kWalRecordMagic, kWalRecordVersion, payload), true,
          1 << 20, state),
      SerializeError);

  std::string bad_magic =
      encode_wal_settle("vm-0", 0, SettleOutcome::kProcessed);
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0xff);
  EXPECT_THROW(replay_wal_segment(bad_magic, true, 1 << 20, state),
               SerializeError);

  // Version skew: structurally sound, unsupported version => hard error.
  const std::string future = seal_snapshot(
      kWalRecordMagic, kWalRecordVersion + 1,
      bad_outcome.substr(kSnapshotHeaderBytes));
  EXPECT_THROW(replay_wal_segment(future, true, 1 << 20, state),
               SerializeError);
}

TEST(WalReplay, MalformedSnapshotRecordsRejected) {
  WalState state;

  // Held set not ascending above the floor.
  BinaryWriter descending;
  descending.put<std::uint8_t>(2);  // snapshot
  descending.put<std::uint32_t>(1);
  descending.put_string("vm-0");
  descending.put<std::uint64_t>(10);  // floor
  descending.put_vector(std::vector<std::uint64_t>{12, 11});
  EXPECT_THROW(replay_wal_segment(
                   seal_snapshot(kWalRecordMagic, kWalRecordVersion,
                                 descending.bytes()),
                   true, 1 << 20, state),
               SerializeError);

  // Hostile agent count.
  BinaryWriter hostile;
  hostile.put<std::uint8_t>(2);
  hostile.put<std::uint32_t>(0xffffffffu);
  EXPECT_THROW(replay_wal_segment(
                   seal_snapshot(kWalRecordMagic, kWalRecordVersion,
                                 hostile.bytes()),
                   true, 1 << 20, state),
               SerializeError);
}

// ------------------------------------------------------ WriteAheadLog IO --

TEST(WriteAheadLogTest, AppendCommitReplayRoundTrip) {
  TempWalDir dir("roundtrip");
  {
    WalConfig config;
    config.dir = dir.path;
    config.server_label = "walu-roundtrip";
    WriteAheadLog wal(config);
    EXPECT_EQ(wal.replayed_records(), 0u);
    for (std::uint64_t seq = 0; seq < 10; ++seq) {
      wal.append("vm-0", seq, SettleOutcome::kProcessed);
    }
    wal.append("vm-1", 3, SettleOutcome::kProcessed);
    wal.commit();
  }
  WalConfig config;
  config.dir = dir.path;
  config.server_label = "walu-roundtrip2";
  WriteAheadLog wal(config);
  EXPECT_EQ(wal.replayed_records(), 11u);
  ASSERT_EQ(wal.restored().size(), 2u);
  EXPECT_EQ(wal.restored().at("vm-0").floor, 10u);
  EXPECT_TRUE(wal.restored().at("vm-0").held.empty());
  EXPECT_EQ(wal.restored().at("vm-1").floor, 0u);
  EXPECT_EQ(wal.restored().at("vm-1").held, (std::vector<std::uint64_t>{3}));
  EXPECT_GE(histogram_count("praxi_wal_replay_seconds", "walu-roundtrip2"),
            1u);
}

TEST(WriteAheadLogTest, UncommittedAppendsAreNotDurable) {
  TempWalDir dir("uncommitted");
  {
    WalConfig config;
    config.dir = dir.path;
    WriteAheadLog wal(config);
    wal.append("vm-0", 0, SettleOutcome::kProcessed);
    wal.commit();
    wal.append("vm-0", 1, SettleOutcome::kProcessed);
    // no commit — destructor must not settle the pending record
  }
  WalConfig config;
  config.dir = dir.path;
  WriteAheadLog wal(config);
  EXPECT_EQ(wal.replayed_records(), 1u);
  EXPECT_EQ(wal.restored().at("vm-0").floor, 1u);
}

TEST(WriteAheadLogTest, CompactionFoldsStateAndDeletesOldSegments) {
  TempWalDir dir("compact");
  WalConfig config;
  config.dir = dir.path;
  config.server_label = "walu-compact";
  {
    WriteAheadLog wal(config);
    for (std::uint64_t seq = 0; seq < 50; ++seq) {
      wal.append("vm-0", seq, SettleOutcome::kProcessed);
    }
    wal.commit();
    WalState state;
    state["vm-0"].floor = 50;
    state["vm-9"].floor = 7;
    state["vm-9"].held = {9, 12};
    wal.compact(state);
    EXPECT_EQ(wal.segment_count(), 1u);
    EXPECT_GT(wal.live_bytes(), 0u);
    // The log stays appendable after rotation.
    wal.append("vm-9", 7, SettleOutcome::kProcessed);
    wal.append("vm-9", 8, SettleOutcome::kProcessed);
    wal.commit();
  }
  WriteAheadLog wal(config);
  EXPECT_EQ(wal.restored().at("vm-0").floor, 50u);
  EXPECT_EQ(wal.restored().at("vm-9").floor, 10u);  // 7,8 settled reach 9
  EXPECT_EQ(wal.restored().at("vm-9").held, (std::vector<std::uint64_t>{12}));
}

TEST(WriteAheadLogTest, CrashBetweenSnapshotPublishAndDeleteIsHarmless) {
  TempWalDir dir("compact_crash");
  WalConfig config;
  config.dir = dir.path;
  {
    WriteAheadLog wal(config);
    wal.append("vm-0", 0, SettleOutcome::kProcessed);
    wal.commit();
  }
  // Simulate the crash window: the snapshot segment was published but the
  // old segment was never deleted. Replay must apply the old segment, then
  // let the snapshot REPLACE its state.
  WalState state;
  state["vm-5"].floor = 99;
  write_file_atomic(dir.path + "/wal-00000002.seg", encode_wal_snapshot(state));

  WriteAheadLog wal(config);
  ASSERT_EQ(wal.restored().size(), 1u);
  EXPECT_EQ(wal.restored().at("vm-5").floor, 99u);
}

TEST(WriteAheadLogTest, TornTailInNonLastSegmentIsFatal) {
  TempWalDir dir("midtorn");
  WalConfig config;
  config.dir = dir.path;
  {
    WriteAheadLog wal(config);
    wal.append("vm-0", 0, SettleOutcome::kProcessed);
    wal.commit();
  }
  // Truncate segment 1 mid-record, then add a later segment: the tear is
  // no longer at the log's end, so replay must refuse.
  const std::string seg1 = dir.path + "/wal-00000001.seg";
  const auto size = stdfs::file_size(seg1);
  stdfs::resize_file(seg1, size - 3);
  write_file_atomic(dir.path + "/wal-00000002.seg",
                    encode_wal_settle("vm-0", 1, SettleOutcome::kProcessed));
  EXPECT_THROW(WriteAheadLog{config}, SerializeError);
}

TEST(WriteAheadLogTest, ReplaysHundredThousandRecordLogBeforeOpening) {
  TempWalDir dir("large");
  WalConfig config;
  config.dir = dir.path;
  config.server_label = "walu-large";
  // Large enough that 100k records never trigger rotation mid-test.
  config.segment_bytes = 64u << 20;
  constexpr std::uint64_t kAgents = 10;
  constexpr std::uint64_t kPerAgent = 10000;
  {
    WriteAheadLog wal(config);
    for (std::uint64_t seq = 0; seq < kPerAgent; ++seq) {
      for (std::uint64_t a = 0; a < kAgents; ++a) {
        wal.append("vm-" + std::to_string(a), seq, SettleOutcome::kProcessed);
      }
      if (seq % 1000 == 999) wal.commit();
    }
    wal.commit();
  }
  config.server_label = "walu-large2";
  // Constructing the log IS the replay — by the time any listener could
  // open, restored() is complete and praxi_wal_replay_seconds has the
  // measurement.
  WriteAheadLog wal(config);
  EXPECT_EQ(wal.replayed_records(), kAgents * kPerAgent);
  ASSERT_EQ(wal.restored().size(), kAgents);
  for (const auto& [agent, tracker] : wal.restored()) {
    EXPECT_EQ(tracker.floor, kPerAgent) << agent;
    EXPECT_TRUE(tracker.held.empty()) << agent;
  }
  EXPECT_EQ(histogram_count("praxi_wal_replay_seconds", "walu-large2"), 1u);
}

// ------------------------------------------------------- server + WAL -----

class WalServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { model_ = new core::Praxi(tiny_trained_praxi()); }
  static void TearDownTestSuite() { delete model_; }

  static std::unique_ptr<DiscoveryServer> make_server(
      const std::string& wal_dir, std::size_t wal_segment_bytes = 4u << 20) {
    ServerConfig config = tiny_server_config();
    config.wal_dir = wal_dir;
    config.wal_segment_bytes = wal_segment_bytes;
    return std::make_unique<DiscoveryServer>(*model_, config);
  }

  static core::Praxi* model_;
};

core::Praxi* WalServerTest::model_ = nullptr;

TEST_F(WalServerTest, RestartRemembersEverySettledReport) {
  TempWalDir dir("restart");
  const auto reports = make_reports(3, 4);

  std::vector<DiscoveryKey> first_run;
  {
    auto server = make_server(dir.path);
    MessageBus bus;
    for (const auto& r : reports) bus.send(r.to_wire());
    first_run = keyed(server->process(bus));
    EXPECT_EQ(server->processed(), reports.size());
    EXPECT_EQ(first_run.size(), reports.size());
  }

  // The restarted server sees every report again (agents resend after the
  // "crash") and must re-learn exactly nothing.
  auto server = make_server(dir.path);
  MessageBus bus;
  for (const auto& r : reports) bus.send(r.to_wire());
  const auto rerun = server->process(bus);
  EXPECT_TRUE(rerun.empty());
  EXPECT_EQ(server->processed(), 0u);
  EXPECT_EQ(server->duplicates(), reports.size());
  EXPECT_EQ(server->store().size(), 0u);  // zero duplicate learns
}

TEST_F(WalServerTest, KillAtEveryByteOffsetConvergesToCleanRun) {
  const auto reports = make_reports(2, 6);

  // Clean run: the reference discoveries, plus the full WAL bytes with the
  // byte boundary after each settled record (one report per process() call
  // => one record per boundary, in report order).
  TempWalDir clean_dir("kill_clean");
  std::vector<DiscoveryKey> reference;  // discovery of reports[i], in order
  std::string wal_bytes;
  std::vector<std::size_t> boundaries;  // WAL size after reports[0..i]
  {
    auto server = make_server(clean_dir.path);
    MessageBus bus;
    for (const auto& r : reports) {
      bus.send(r.to_wire());
      const auto discoveries = server->process(bus);
      ASSERT_EQ(discoveries.size(), 1u);
      reference.emplace_back(discoveries[0].agent_id, discoveries[0].sequence,
                             discoveries[0].applications);
      boundaries.push_back(server->wal()->live_bytes());
    }
    wal_bytes = read_file(server->wal()->live_segment_path());
    ASSERT_EQ(wal_bytes.size(), boundaries.back());
  }

  // Kill the server at EVERY byte offset of the log, restart on the
  // truncated prefix, resend everything.
  TempWalDir dir("kill_offsets");
  for (std::size_t cut = 0; cut <= wal_bytes.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    stdfs::remove_all(dir.path);
    stdfs::create_directories(dir.path);
    {
      std::ofstream out(dir.path + "/wal-00000001.seg", std::ios::binary);
      out.write(wal_bytes.data(), static_cast<std::streamsize>(cut));
    }
    // Records fully contained in the prefix — exactly those reports are
    // already settled; the torn remainder must be forgotten.
    const std::size_t settled_before =
        static_cast<std::size_t>(std::count_if(
            boundaries.begin(), boundaries.end(),
            [cut](std::size_t b) { return b <= cut; }));

    auto server = make_server(dir.path);
    ASSERT_EQ(server->wal()->replayed_records(), settled_before);

    MessageBus bus;
    for (const auto& r : reports) bus.send(r.to_wire());
    const auto discoveries = keyed(server->process(bus));

    // Exactly-once across the crash: every report not yet durable is
    // processed now, every durable one is deduplicated, and the combined
    // discoveries are bit-identical to the uninterrupted run.
    EXPECT_EQ(server->processed(), reports.size() - settled_before);
    EXPECT_EQ(server->duplicates(), settled_before);
    EXPECT_EQ(server->store().size(), reports.size() - settled_before);
    std::vector<DiscoveryKey> expected(reference.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               settled_before),
                                       reference.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(discoveries, expected);

    // The repaired log must itself replay cleanly, with everything settled.
    auto reborn = make_server(dir.path);
    for (const auto& [agent, tracker] : reborn->wal()->restored()) {
      EXPECT_EQ(tracker.floor, 6u) << agent;
      EXPECT_TRUE(tracker.held.empty()) << agent;
    }
  }
}

TEST_F(WalServerTest, CrashBeforeCommitLeavesNoAcceptanceTrace) {
  TempWalDir dir("crash_window");
  auto server = make_server(dir.path);
  MessageBus bus;
  const auto reports = make_reports(1, 1);
  bus.send(reports[0].to_wire());

  testhooks::simulate_crash_before_commit = true;
  EXPECT_THROW(server->process(bus), std::runtime_error);
  testhooks::simulate_crash_before_commit = false;

  // The bug this pins (accept-before-commit): acceptance used to be
  // recorded in phase 1, so the failed report's resend was dropped as a
  // "duplicate" forever. Settle-time acceptance must leave no trace.
  EXPECT_EQ(server->processed(), 0u);
  EXPECT_EQ(server->store().size(), 0u);
  EXPECT_FALSE(bus.acknowledged(reports[0].agent_id, reports[0].sequence));

  // The at-least-once wire redelivers (the drained frame was never acked);
  // the retry must process exactly once.
  bus.send(reports[0].to_wire());
  const auto discoveries = server->process(bus);
  EXPECT_EQ(discoveries.size(), 1u);
  EXPECT_EQ(server->processed(), 1u);
  EXPECT_EQ(server->duplicates(), 0u);
  EXPECT_TRUE(bus.acknowledged(reports[0].agent_id, reports[0].sequence));
}

TEST_F(WalServerTest, CompactionKeepsDedupExactAcrossRestart) {
  TempWalDir dir("compaction");
  const auto reports = make_reports(2, 8);
  {
    // A segment bound this small forces a compaction after every batch.
    auto server = make_server(dir.path, 64);
    MessageBus bus;
    for (const auto& r : reports) {
      bus.send(r.to_wire());
      server->process(bus);
    }
    EXPECT_EQ(server->processed(), reports.size());
    EXPECT_EQ(server->wal()->segment_count(), 1u);
    EXPECT_GE(obs::MetricsRegistry::global().counter_value(
                  "praxi_wal_compactions_total",
                  {{"server", server->server_label()}}),
              1u);
  }
  auto server = make_server(dir.path, 64);
  MessageBus bus;
  for (const auto& r : reports) bus.send(r.to_wire());
  server->process(bus);
  EXPECT_EQ(server->processed(), 0u);
  EXPECT_EQ(server->duplicates(), reports.size());
}

TEST_F(WalServerTest, OutOfOrderHeldSequencesSurviveRestart) {
  TempWalDir dir("held");
  const auto reports = make_reports(1, 6);  // sequences 0..5
  {
    auto server = make_server(dir.path);
    MessageBus bus;
    for (const std::size_t i : {0u, 2u, 5u}) bus.send(reports[i].to_wire());
    server->process(bus);
    EXPECT_EQ(server->processed(), 3u);
  }
  auto server = make_server(dir.path);
  MessageBus bus;
  for (const std::size_t i : {0u, 2u, 5u}) bus.send(reports[i].to_wire());
  server->process(bus);
  EXPECT_EQ(server->processed(), 0u);
  EXPECT_EQ(server->duplicates(), 3u);
  // The gaps are still open — and only the gaps.
  for (const std::size_t i : {1u, 3u, 4u}) bus.send(reports[i].to_wire());
  server->process(bus);
  EXPECT_EQ(server->processed(), 3u);
  EXPECT_EQ(server->duplicates(), 3u);
}

TEST_F(WalServerTest, ServeWithoutWalDirWritesNothing) {
  ServerConfig config = tiny_server_config();
  DiscoveryServer server(*model_, config);
  EXPECT_EQ(server.wal(), nullptr);
  MessageBus bus;
  const auto reports = make_reports(1, 2);
  for (const auto& r : reports) bus.send(r.to_wire());
  server.process(bus);
  EXPECT_EQ(server.processed(), 2u);
}

// ------------------------------------------------ idle-agent eviction -----

TEST_F(WalServerTest, IdleAgentsEvictToFloorsWithoutForgettingDedup) {
  ServerConfig config = tiny_server_config();
  config.max_resident_agents = 2;
  DiscoveryServer server(*model_, config);
  MessageBus bus;

  auto send_and_process = [&](std::size_t agent, std::uint64_t seq) {
    ChangesetReport report;
    report.agent_id = "vm-" + std::to_string(agent);
    report.sequence = seq;
    report.changeset = training_corpus()[agent % training_corpus().size()];
    bus.send(report.to_wire());
    server.process(bus);
  };

  for (std::size_t agent = 0; agent < 4; ++agent) send_and_process(agent, 0);
  // Agents idle in the last batch fold down to their floors.
  EXPECT_LE(server.resident_agents(), 2u);
  EXPECT_EQ(gauge_value("praxi_server_agents", server.server_label()),
            static_cast<double>(server.resident_agents()));

  // An evicted agent's dedup floor is intact: its old report is still a
  // duplicate, its next one is fresh.
  send_and_process(0, 0);
  EXPECT_EQ(server.duplicates(), 1u);
  send_and_process(0, 1);
  EXPECT_EQ(server.processed(), 5u);
  EXPECT_EQ(server.duplicates(), 1u);
}

TEST_F(WalServerTest, EvictedFloorsAreIncludedInCompactionSnapshots) {
  TempWalDir dir("evict_compact");
  {
    ServerConfig config = tiny_server_config();
    config.wal_dir = dir.path;
    config.wal_segment_bytes = 64;  // compact after every batch
    config.max_resident_agents = 1;
    DiscoveryServer server(*model_, config);
    MessageBus bus;
    for (std::size_t agent = 0; agent < 3; ++agent) {
      ChangesetReport report;
      report.agent_id = "vm-" + std::to_string(agent);
      report.sequence = 0;
      report.changeset = training_corpus()[0];
      bus.send(report.to_wire());
      server.process(bus);
    }
    EXPECT_LE(server.resident_agents(), 2u);
  }
  // Even agents whose trackers were evicted before the compaction must
  // come back deduplicated after a restart.
  ServerConfig config = tiny_server_config();
  config.wal_dir = dir.path;
  DiscoveryServer server(*model_, config);
  MessageBus bus;
  for (std::size_t agent = 0; agent < 3; ++agent) {
    ChangesetReport report;
    report.agent_id = "vm-" + std::to_string(agent);
    report.sequence = 0;
    report.changeset = training_corpus()[0];
    bus.send(report.to_wire());
  }
  server.process(bus);
  EXPECT_EQ(server.processed(), 0u);
  EXPECT_EQ(server.duplicates(), 3u);
}

}  // namespace
}  // namespace praxi::service
