// Tests for the annotated synchronization primitives and the lock-rank
// deadlock checker (common/sync.hpp, docs/CONCURRENCY.md).
//
// The rank checker's whole contract is "a rank inversion aborts the
// process with both lock names", so the interesting cases are death
// tests. They are gated on lock_rank_checks_enabled(): a build with
// PRAXI_LOCK_RANK_CHECKS=OFF compiles the checker out entirely, and the
// death tests skip rather than report a false failure.
#include "common/sync.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "common/annotations.hpp"

namespace praxi::common {
namespace {

TEST(LockRankTest, OrderedAcquisitionPasses) {
  Mutex outer("ordered_outer", LockRank::kServerState);
  Mutex inner("ordered_inner", LockRank::kWal);
  {
    LockGuard a(outer);
    LockGuard b(inner);
    if (lock_rank_checks_enabled()) {
      EXPECT_EQ(testhooks::held_lock_count(), 2u);
    }
  }
  if (lock_rank_checks_enabled()) {
    EXPECT_EQ(testhooks::held_lock_count(), 0u);
  }
}

// Rank order constrains locks held SIMULTANEOUSLY, not the order a thread
// touches locks over its lifetime: dropping a high-rank lock and then
// taking a low-rank one is fine.
TEST(LockRankTest, SequentialAcquisitionIgnoresRankOrder) {
  Mutex high("sequential_high", LockRank::kWal);
  Mutex low("sequential_low", LockRank::kServerState);
  { LockGuard a(high); }
  { LockGuard b(low); }
  if (lock_rank_checks_enabled()) {
    EXPECT_EQ(testhooks::held_lock_count(), 0u);
  }
}

// The held-rank stack is thread-local: another thread's held locks never
// constrain this thread's acquisition order.
TEST(LockRankTest, HeldStackIsPerThread) {
  Mutex outer("per_thread_outer", LockRank::kServerState);
  Mutex inner("per_thread_inner", LockRank::kWal);
  LockGuard hold(inner);
  std::thread other([&outer] {
    LockGuard lock(outer);  // would invert if the stack were global
    if (lock_rank_checks_enabled()) {
      EXPECT_EQ(testhooks::held_lock_count(), 1u);
    }
  });
  other.join();
}

TEST(LockRankDeathTest, InversionAbortsWithBothLockNames) {
  if (!lock_rank_checks_enabled()) {
    GTEST_SKIP() << "built with PRAXI_LOCK_RANK_CHECKS=OFF";
  }
  Mutex low("inversion_low", LockRank::kServerState);
  Mutex high("inversion_high", LockRank::kWal);
  EXPECT_DEATH(
      {
        LockGuard a(high);
        LockGuard b(low);
      },
      "lock-rank inversion.*\"inversion_low\".*\"inversion_high\"");
}

// Strictly increasing means same-rank nesting is rejected too — that is
// what makes recursive locking and the ABBA pattern between two same-rank
// locks impossible, not just unlikely.
TEST(LockRankDeathTest, SameRankNestingAborts) {
  if (!lock_rank_checks_enabled()) {
    GTEST_SKIP() << "built with PRAXI_LOCK_RANK_CHECKS=OFF";
  }
  Mutex first("same_rank_first", LockRank::kWal);
  Mutex second("same_rank_second", LockRank::kWal);
  EXPECT_DEATH(
      {
        LockGuard a(first);
        LockGuard b(second);
      },
      "lock-rank inversion.*\"same_rank_second\".*\"same_rank_first\"");
}

// Bypass TSA deliberately: releasing a lock this thread does not hold is
// exactly what the runtime checker must catch, but TSA would (correctly)
// reject the call at compile time under the --tsa lane.
void release_unheld(Mutex& mutex) PRAXI_NO_THREAD_SAFETY_ANALYSIS {
  mutex.unlock();
}

TEST(LockRankDeathTest, ReleasingUnheldLockAborts) {
  if (!lock_rank_checks_enabled()) {
    GTEST_SKIP() << "built with PRAXI_LOCK_RANK_CHECKS=OFF";
  }
  Mutex mutex("unheld_release", LockRank::kWal);
  EXPECT_DEATH(release_unheld(mutex), "\"unheld_release\".*does not hold");
}

TEST(CondVarTest, WaitReleasesLockAndWakesOnNotify) {
  Mutex mutex("condvar_mutex", LockRank::kThreadPool);
  CondVar cv;
  bool ready = false;
  // The worker can only take the lock because wait() releases it while
  // blocked; if wait() held on, this test would deadlock (and time out).
  std::thread worker([&] {
    LockGuard lock(mutex);
    ready = true;
    cv.notify_one();
  });
  {
    LockGuard lock(mutex);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
    if (lock_rank_checks_enabled()) {
      // wait() reacquired the lock: still held from the checker's view.
      EXPECT_EQ(testhooks::held_lock_count(), 1u);
    }
  }
  worker.join();
}

// The negative-compile contract of the --tsa lane, runnable as a plain
// unit test wherever clang is installed: the unguarded read in
// tsa_negcompile.cpp must be rejected, and its locked variant (the
// positive control) must be accepted. Skips — like the lane itself —
// when clang++ is absent.
TEST(TsaNegativeCompile, UnguardedAccessRejectedLockedControlAccepted) {
  if (std::system("command -v clang++ >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "clang++ not installed (the --tsa lane runs this "
                    "check on machines that have it)";
  }
  const std::string root = PRAXI_SOURCE_DIR;
  const std::string compile = "clang++ -std=c++20 -fsyntax-only -I" + root +
                              "/src -Wthread-safety -Werror=thread-safety " +
                              root + "/tests/tsa_negcompile.cpp";
  EXPECT_NE(std::system((compile + " 2>/dev/null").c_str()), 0)
      << "unguarded access to a PRAXI_GUARDED_BY field compiled — Thread "
         "Safety Analysis is not enforcing";
  EXPECT_EQ(std::system((compile + " -DPRAXI_NEGCOMPILE_LOCKED").c_str()), 0)
      << "the locked positive control failed to compile";
}

}  // namespace
}  // namespace praxi::common
