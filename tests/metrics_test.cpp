// Tests for the evaluation metrics (eval/metrics.hpp): the paper's
// support-weighted F1 (Eqns. 1-2) against hand-computed values.
#include "eval/metrics.hpp"

#include <gtest/gtest.h>

namespace praxi::eval {
namespace {

TEST(LabelStats, PrecisionRecallF1) {
  LabelStats stats;
  stats.true_positives = 6;
  stats.false_positives = 2;
  stats.false_negatives = 4;
  EXPECT_DOUBLE_EQ(stats.precision(), 0.75);
  EXPECT_DOUBLE_EQ(stats.recall(), 0.6);
  EXPECT_NEAR(stats.f1(), 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
}

TEST(LabelStats, ZeroDenominators) {
  LabelStats stats;
  EXPECT_EQ(stats.precision(), 0.0);
  EXPECT_EQ(stats.recall(), 0.0);
  EXPECT_EQ(stats.f1(), 0.0);
}

TEST(EvaluateSingle, PerfectPredictions) {
  const std::vector<std::string> truths{"a", "b", "a", "c"};
  const EvalResult result = evaluate_single(truths, truths);
  EXPECT_DOUBLE_EQ(result.weighted_f1(), 1.0);
  EXPECT_DOUBLE_EQ(result.exact_match_ratio, 1.0);
  EXPECT_EQ(result.samples, 4u);
  EXPECT_EQ(result.total_support, 4u);
}

TEST(EvaluateSingle, HandComputedWeightedF1) {
  // 3 samples of "a" (2 right), 1 sample of "b" (right), mistake predicts b.
  const std::vector<std::string> truths{"a", "a", "a", "b"};
  const std::vector<std::string> preds{"a", "a", "b", "b"};
  const EvalResult result = evaluate(
      {{truths[0]}, {truths[1]}, {truths[2]}, {truths[3]}},
      {{preds[0]}, {preds[1]}, {preds[2]}, {preds[3]}});
  // a: tp=2 fn=1 fp=0 -> P=1, R=2/3, F1=0.8, support 3/4
  // b: tp=1 fn=0 fp=1 -> P=1/2, R=1, F1=2/3, support 1/4
  const double expected = 0.8 * 3.0 / 4.0 + (2.0 / 3.0) * 1.0 / 4.0;
  EXPECT_NEAR(result.weighted_f1(), expected, 1e-12);
  EXPECT_NEAR(result.weighted_precision(), 1.0 * 0.75 + 0.5 * 0.25, 1e-12);
  EXPECT_NEAR(result.weighted_recall(), (2.0 / 3.0) * 0.75 + 1.0 * 0.25,
              1e-12);
  EXPECT_DOUBLE_EQ(result.exact_match_ratio, 0.75);
}

TEST(Evaluate, MultiLabelPartialCredit) {
  // Truth {a,b}; predicted {a,c}: a hits, b missed, c spurious.
  const EvalResult result = evaluate({{"a", "b"}}, {{"a", "c"}});
  EXPECT_EQ(result.per_label.at("a").true_positives, 1u);
  EXPECT_EQ(result.per_label.at("b").false_negatives, 1u);
  EXPECT_EQ(result.per_label.at("c").false_positives, 1u);
  EXPECT_EQ(result.total_support, 2u);
  // a: F1=1 support 1/2; b: F1=0 support 1/2; c: support 0.
  EXPECT_NEAR(result.weighted_f1(), 0.5, 1e-12);
  EXPECT_EQ(result.exact_match_ratio, 0.0);
}

TEST(Evaluate, EmptyPredictionSetCountsAsMisses) {
  const EvalResult result = evaluate({{"a"}}, {{}});
  EXPECT_EQ(result.per_label.at("a").false_negatives, 1u);
  EXPECT_EQ(result.weighted_f1(), 0.0);
}

TEST(Evaluate, PredictionOrderIrrelevant) {
  const EvalResult forward = evaluate({{"a", "b"}}, {{"a", "b"}});
  const EvalResult backward = evaluate({{"a", "b"}}, {{"b", "a"}});
  EXPECT_DOUBLE_EQ(forward.weighted_f1(), backward.weighted_f1());
  EXPECT_DOUBLE_EQ(backward.weighted_f1(), 1.0);
}

TEST(Evaluate, SizeMismatchThrows) {
  EXPECT_THROW(evaluate({{"a"}}, {}), std::invalid_argument);
}

TEST(Evaluate, DuplicateLabelsInSampleThrow) {
  EXPECT_THROW(evaluate({{"a", "a"}}, {{"a"}}), std::invalid_argument);
  EXPECT_THROW(evaluate({{"a"}}, {{"b", "b"}}), std::invalid_argument);
}

TEST(Evaluate, EmptyInputsYieldZeroes) {
  const EvalResult result = evaluate({}, {});
  EXPECT_EQ(result.weighted_f1(), 0.0);
  EXPECT_EQ(result.samples, 0u);
  EXPECT_EQ(result.exact_match_ratio, 0.0);
}

TEST(Evaluate, SupportWeightingFavorsFrequentLabels) {
  // 9 correct samples of "common", 1 wrong sample of "rare": weighted F1
  // must sit near 0.9 (not 0.5 as an unweighted macro average would).
  std::vector<std::vector<std::string>> truths, preds;
  for (int i = 0; i < 9; ++i) {
    truths.push_back({"common"});
    preds.push_back({"common"});
  }
  truths.push_back({"rare"});
  preds.push_back({"common"});
  const EvalResult result = evaluate(truths, preds);
  EXPECT_GT(result.weighted_f1(), 0.85);
  EXPECT_LT(result.weighted_f1(), 0.95);
}

}  // namespace
}  // namespace praxi::eval
