#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace praxi {
namespace {

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ThreadPoolTest, SpawnsRequestedWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ManySubmissionsAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  for (int i = 0; i < 500; ++i) EXPECT_EQ(futures[size_t(i)].get(), i);
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future =
      pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelForTest, PreservesIndexOrdering) {
  ThreadPool pool(4);
  std::vector<int> parallel_out(1000, -1);
  parallel_for(&pool, parallel_out.size(),
               [&](std::size_t i) { parallel_out[i] = int(i) * 3; });

  std::vector<int> sequential_out(1000, -1);
  parallel_for(nullptr, sequential_out.size(),
               [&](std::size_t i) { sequential_out[i] = int(i) * 3; });

  EXPECT_EQ(parallel_out, sequential_out);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<std::size_t> seen;
  parallel_for(nullptr, 5, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroCountIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(&pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, RethrowsTaskException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [&](std::size_t i) {
                     if (i == 37) throw std::invalid_argument("item 37");
                     completed.fetch_add(1);
                   }),
      std::invalid_argument);
  // Every non-throwing item still ran: the batch completes before rethrow.
  EXPECT_EQ(completed.load(), 99);
}

}  // namespace
}  // namespace praxi
