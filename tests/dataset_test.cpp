// Tests for the dataset builder (pkg/dataset.hpp): the paper's clean/dirty
// collection protocols (§IV-B), multi-label synthesis, and the "dirtier"
// noise overlay (§V-A).
#include "pkg/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "common/serialize.hpp"

#include "pkg/installer.hpp"

namespace praxi::pkg {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  DatasetTest() : catalog_(Catalog::subset(42, 8, 2)) {}

  Catalog catalog_;
};

TEST_F(DatasetTest, CleanCollectionCountsAndLabels) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 3;
  const Dataset dataset = builder.collect_clean(options);

  EXPECT_EQ(dataset.size(), 10u * 3u);
  EXPECT_EQ(dataset.labels.size(), 10u);
  std::map<std::string, int> per_label;
  for (const auto& cs : dataset.changesets) {
    ASSERT_EQ(cs.labels().size(), 1u);
    ++per_label[cs.labels().front()];
    EXPECT_TRUE(cs.closed());
    EXPECT_FALSE(cs.empty());
  }
  for (const auto& [label, count] : per_label) EXPECT_EQ(count, 3);
}

TEST_F(DatasetTest, CleanChangesetsContainNoDependencyPayload) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 1;
  const Dataset dataset = builder.collect_clean(options);

  std::set<std::string> dep_paths;
  for (const auto& dep : catalog_.dependency_names()) {
    for (const auto& file : catalog_.get(dep).files) {
      dep_paths.insert(file.path);
    }
  }
  for (const auto& cs : dataset.changesets) {
    for (const auto& rec : cs.records()) {
      EXPECT_EQ(dep_paths.count(rec.path), 0u)
          << "clean changeset for " << cs.labels().front()
          << " captured dependency file " << rec.path;
    }
  }
}

TEST_F(DatasetTest, DirtyChangesetsCaptureDependenciesSomewhere) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 2;
  options.min_wait_s = 1.0;
  options.max_wait_s = 2.0;
  const Dataset dataset = builder.collect_dirty(options);

  std::set<std::string> dep_paths;
  for (const auto& dep : catalog_.dependency_names()) {
    for (const auto& file : catalog_.get(dep).files) {
      dep_paths.insert(file.path);
    }
  }
  std::size_t with_deps = 0;
  for (const auto& cs : dataset.changesets) {
    for (const auto& rec : cs.records()) {
      if (dep_paths.count(rec.path) > 0) {
        ++with_deps;
        break;
      }
    }
  }
  EXPECT_GT(with_deps, 0u);
}

TEST_F(DatasetTest, DirtyChangesetsAreBiggerThanClean) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 2;
  const Dataset clean = builder.collect_clean(options);
  const Dataset dirty = builder.collect_dirty(options);
  EXPECT_GT(dirty.total_bytes(), clean.total_bytes());
}

TEST_F(DatasetTest, AppFilterRestrictsLabels) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 2;
  options.app_filter = {catalog_.repository_names()[0],
                        catalog_.repository_names()[1]};
  const Dataset dataset = builder.collect_dirty(options);
  EXPECT_EQ(dataset.size(), 4u);
  EXPECT_EQ(dataset.labels.size(), 2u);
}

TEST_F(DatasetTest, AppFilterRejectsUnknownNames) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.app_filter = {"no-such-app"};
  EXPECT_THROW(builder.collect_clean(options), std::invalid_argument);
}

TEST_F(DatasetTest, CollectionIsDeterministicPerSeed) {
  CollectOptions options;
  options.samples_per_app = 2;
  const Dataset a = DatasetBuilder(catalog_, 9).collect_dirty(options);
  const Dataset b = DatasetBuilder(catalog_, 9).collect_dirty(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.changesets[i], b.changesets[i]);
  }
  const Dataset c = DatasetBuilder(catalog_, 10).collect_dirty(options);
  EXPECT_NE(a.changesets[0], c.changesets[0]);
}

TEST_F(DatasetTest, SynthesizeMultiProducesDistinctLabelSets) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 3;
  const Dataset singles = builder.collect_dirty(options);
  const Dataset multi =
      DatasetBuilder::synthesize_multi(singles, 40, 2, 5, 11);

  EXPECT_EQ(multi.size(), 40u);
  for (const auto& cs : multi.changesets) {
    EXPECT_GE(cs.labels().size(), 2u);
    EXPECT_LE(cs.labels().size(), 5u);
    std::set<std::string> distinct(cs.labels().begin(), cs.labels().end());
    EXPECT_EQ(distinct.size(), cs.labels().size());
  }
}

TEST_F(DatasetTest, SynthesizeMultiValidatesArguments) {
  Dataset empty;
  EXPECT_THROW(DatasetBuilder::synthesize_multi(empty, 10, 2, 5, 1),
               std::invalid_argument);

  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 1;
  const Dataset singles = builder.collect_dirty(options);
  EXPECT_THROW(DatasetBuilder::synthesize_multi(singles, 10, 1, 5, 1),
               std::invalid_argument);
  EXPECT_THROW(DatasetBuilder::synthesize_multi(singles, 10, 3, 2, 1),
               std::invalid_argument);
}

TEST_F(DatasetTest, SynthesizeMultiRejectsMultiLabelSource) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 2;
  const Dataset singles = builder.collect_dirty(options);
  Dataset multi = DatasetBuilder::synthesize_multi(singles, 10, 2, 3, 1);
  EXPECT_THROW(DatasetBuilder::synthesize_multi(multi, 5, 2, 3, 1),
               std::invalid_argument);
}

TEST_F(DatasetTest, DirtierOverlayAddsRecordsKeepsLabels) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 2;
  const Dataset dirty = builder.collect_dirty(options);
  const Dataset dirtier =
      DatasetBuilder::overlay_dirtier_noise(dirty, 13);

  ASSERT_EQ(dirtier.size(), dirty.size());
  std::size_t grew = 0;
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    EXPECT_EQ(dirtier.changesets[i].labels(), dirty.changesets[i].labels());
    EXPECT_GE(dirtier.changesets[i].size(), dirty.changesets[i].size());
    grew += dirtier.changesets[i].size() > dirty.changesets[i].size();
  }
  // The overlay must actually add noise to the vast majority of windows.
  EXPECT_GT(grew, dirty.size() * 8 / 10);
  EXPECT_GT(dirtier.total_bytes(), dirty.total_bytes());
}

TEST_F(DatasetTest, RefreshLabelsDeduplicatesAndSorts) {
  Dataset dataset;
  fs::Changeset a;
  a.add_label("zzz");
  a.close(1);
  fs::Changeset b;
  b.add_label("aaa");
  b.add_label("zzz");
  b.close(2);
  dataset.changesets = {a, b};
  dataset.refresh_labels();
  EXPECT_EQ(dataset.labels, (std::vector<std::string>{"aaa", "zzz"}));
}

TEST_F(DatasetTest, BinaryAndFileRoundTrip) {
  DatasetBuilder builder(catalog_, 7);
  CollectOptions options;
  options.samples_per_app = 2;
  const Dataset original = builder.collect_dirty(options);

  const Dataset parsed = Dataset::from_binary(original.to_binary());
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.changesets[i], original.changesets[i]);
  }
  EXPECT_EQ(parsed.labels, original.labels);

  const std::string path =
      (std::filesystem::temp_directory_path() / "praxi_dataset_test.bin")
          .string();
  original.save(path);
  const Dataset loaded = Dataset::load(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.total_bytes(), original.total_bytes());
  std::remove(path.c_str());
}

TEST_F(DatasetTest, FromBinaryRejectsGarbage) {
  EXPECT_THROW(Dataset::from_binary("garbage"), SerializeError);
  EXPECT_THROW(Dataset::from_binary(""), SerializeError);
}

}  // namespace
}  // namespace praxi::pkg
