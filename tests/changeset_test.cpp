// Tests for changesets (fs/changeset.hpp): close semantics, serialization
// round-trips, and multi-application synthesis (paper §III-A, §IV-B(c)).
#include "fs/changeset.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace praxi::fs {
namespace {

ChangeRecord rec(std::string path, std::int64_t t,
                 ChangeKind kind = ChangeKind::kCreate,
                 std::uint16_t mode = 0644) {
  return ChangeRecord{std::move(path), mode, kind, t};
}

TEST(Changeset, CloseSortsByTimestamp) {
  Changeset cs;
  cs.add(rec("/b", 30));
  cs.add(rec("/a", 10));
  cs.add(rec("/c", 20));
  cs.close(100);
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs.records()[0].path, "/a");
  EXPECT_EQ(cs.records()[1].path, "/c");
  EXPECT_EQ(cs.records()[2].path, "/b");
  EXPECT_EQ(cs.close_time_ms(), 100);
  EXPECT_TRUE(cs.closed());
}

TEST(Changeset, CloseRemovesExactDuplicates) {
  Changeset cs;
  cs.add(rec("/a", 10));
  cs.add(rec("/a", 10));
  cs.add(rec("/a", 10, ChangeKind::kModify));  // different kind: kept
  cs.add(rec("/a", 11));                       // different time: kept
  cs.close(50);
  EXPECT_EQ(cs.size(), 3u);
}

TEST(Changeset, AddAfterCloseThrows) {
  Changeset cs;
  cs.close(1);
  EXPECT_THROW(cs.add(rec("/x", 2)), std::logic_error);
}

TEST(Changeset, DoubleCloseThrows) {
  Changeset cs;
  cs.close(1);
  EXPECT_THROW(cs.close(2), std::logic_error);
}

TEST(Changeset, ExecutableBit) {
  EXPECT_TRUE(rec("/usr/bin/x", 0, ChangeKind::kCreate, 0755).executable());
  EXPECT_FALSE(rec("/etc/x.conf", 0, ChangeKind::kCreate, 0644).executable());
}

TEST(Changeset, TextRoundTrip) {
  Changeset cs;
  cs.set_open_time(1000);
  cs.add(rec("/usr/bin/mysqld", 1500, ChangeKind::kCreate, 0755));
  cs.add(rec("/etc/mysql/my.cnf", 1600, ChangeKind::kModify));
  cs.add(rec("/tmp/scratch", 1700, ChangeKind::kDelete));
  cs.add_label("mysql-server");
  cs.close(2000);

  const Changeset parsed = Changeset::from_text(cs.to_text());
  EXPECT_EQ(parsed, cs);
}

TEST(Changeset, TextRoundTripMultiLabelAndEmpty) {
  Changeset cs;
  cs.set_open_time(5);
  cs.add_label("nginx");
  cs.add_label("redis-server");
  cs.close(9);
  const Changeset parsed = Changeset::from_text(cs.to_text());
  EXPECT_EQ(parsed.labels(),
            (std::vector<std::string>{"nginx", "redis-server"}));
  EXPECT_TRUE(parsed.empty());
  EXPECT_EQ(parsed.open_time_ms(), 5);
  EXPECT_EQ(parsed.close_time_ms(), 9);
}

TEST(Changeset, FromTextRejectsGarbage) {
  EXPECT_THROW(Changeset::from_text("no header here\n"),
               std::invalid_argument);
  EXPECT_THROW(Changeset::from_text("#changeset open=0 close=1 labels=\n"
                                    "X 0644 12 /a\n"),
               std::invalid_argument);
  EXPECT_THROW(Changeset::from_text("#changeset open=0 close=1 labels=\n"
                                    "C 0644 /missing-fields\n"),
               std::invalid_argument);
}

TEST(Changeset, BinaryRoundTrip) {
  Changeset cs;
  cs.set_open_time(123);
  cs.add(rec("/opt/go1.12/bin/go", 456, ChangeKind::kCreate, 0755));
  cs.add(rec("/var/log/syslog", 789, ChangeKind::kModify, 0640));
  cs.add_label("go1.12");
  cs.close(1000);
  EXPECT_EQ(Changeset::from_binary(cs.to_binary()), cs);
}

TEST(Changeset, BinaryRejectsBadMagic) {
  EXPECT_THROW(Changeset::from_binary("XXXXGARBAGE"), SerializeError);
}

TEST(Changeset, SizeBytesTracksTextSize) {
  Changeset cs;
  for (int i = 0; i < 50; ++i) {
    cs.add(rec("/usr/lib/pkg/file" + std::to_string(i), 1'600'000'000'000LL + i));
  }
  cs.close(100);
  const auto text_size = cs.to_text().size();
  // Estimate within 25% of the real serialization.
  EXPECT_GT(cs.size_bytes(), text_size * 3 / 4);
  EXPECT_LT(cs.size_bytes(), text_size * 5 / 4);
}

TEST(SynthesizeMulti, MergesRecordsLabelsAndWindow) {
  Changeset a;
  a.set_open_time(100);
  a.add(rec("/a", 150));
  a.add_label("app-a");
  a.close(200);

  Changeset b;
  b.set_open_time(300);
  b.add(rec("/b", 350));
  b.add(rec("/b2", 340));
  b.add_label("app-b");
  b.close(400);

  const Changeset* parts[] = {&a, &b};
  const Changeset multi = synthesize_multi(parts);

  EXPECT_EQ(multi.size(), 3u);
  EXPECT_EQ(multi.labels(), (std::vector<std::string>{"app-a", "app-b"}));
  EXPECT_EQ(multi.open_time_ms(), 100);
  EXPECT_EQ(multi.close_time_ms(), 400);
  EXPECT_TRUE(multi.closed());
  // Records are globally time-sorted after synthesis.
  EXPECT_EQ(multi.records()[0].path, "/a");
  EXPECT_EQ(multi.records()[1].path, "/b2");
  EXPECT_EQ(multi.records()[2].path, "/b");
}

TEST(SplitAt, PartitionsRecordsByTime) {
  Changeset cs;
  cs.set_open_time(0);
  for (int i = 0; i < 10; ++i) {
    cs.add(rec("/f" + std::to_string(i), i * 100));
  }
  cs.add_label("app");
  cs.close(1000);

  const auto [before, after] = split_at(cs, 500);
  EXPECT_EQ(before.size(), 5u);
  EXPECT_EQ(after.size(), 5u);
  EXPECT_EQ(before.close_time_ms(), 500);
  EXPECT_EQ(after.open_time_ms(), 500);
  EXPECT_EQ(after.close_time_ms(), 1000);
  EXPECT_EQ(before.labels(), cs.labels());
  EXPECT_EQ(after.labels(), cs.labels());
  for (const auto& r : before.records()) EXPECT_LT(r.time_ms, 500);
  for (const auto& r : after.records()) EXPECT_GE(r.time_ms, 500);
}

TEST(SplitAt, ExtremeCutsLeaveOneSideEmpty) {
  Changeset cs;
  cs.add(rec("/only", 100));
  cs.close(200);
  const auto [all_before, none_after] = split_at(cs, 1000);
  EXPECT_EQ(all_before.size(), 1u);
  EXPECT_TRUE(none_after.empty());
  const auto [none_before, all_after] = split_at(cs, 0);
  EXPECT_TRUE(none_before.empty());
  EXPECT_EQ(all_after.size(), 1u);
}

TEST(MergeAdjacent, RestoresSplitChangeset) {
  Changeset cs;
  cs.set_open_time(0);
  for (int i = 0; i < 8; ++i) cs.add(rec("/f" + std::to_string(i), i * 10));
  cs.add_label("app");
  cs.close(100);

  const auto [before, after] = split_at(cs, 35);
  const Changeset rejoined = merge_adjacent(before, after);
  EXPECT_EQ(rejoined.records(), cs.records());
  EXPECT_EQ(rejoined.labels(), cs.labels());  // label deduplicated
  EXPECT_EQ(rejoined.open_time_ms(), cs.open_time_ms());
  EXPECT_EQ(rejoined.close_time_ms(), cs.close_time_ms());
}

TEST(MergeAdjacent, UnitesDistinctLabels) {
  Changeset a;
  a.add(rec("/a", 1));
  a.add_label("app-a");
  a.close(10);
  Changeset b;
  b.add(rec("/b", 11));
  b.add_label("app-b");
  b.add_label("app-a");
  b.close(20);
  const Changeset merged = merge_adjacent(a, b);
  EXPECT_EQ(merged.labels(), (std::vector<std::string>{"app-a", "app-b"}));
}

// Property sweep: synthesizing k single-label changesets yields k labels and
// the sum of the record counts, for any k.
class SynthesizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SynthesizeSweep, CountsAddUp) {
  const int k = GetParam();
  praxi::Rng rng(99);
  std::vector<Changeset> owned;
  owned.reserve(static_cast<std::size_t>(k));
  std::size_t total_records = 0;
  for (int i = 0; i < k; ++i) {
    Changeset cs;
    cs.set_open_time(i * 1000);
    const int n = 1 + int(rng.below(20));
    for (int j = 0; j < n; ++j) {
      cs.add(rec("/pkg" + std::to_string(i) + "/f" + std::to_string(j),
                 i * 1000 + j));
    }
    total_records += static_cast<std::size_t>(n);
    cs.add_label("app-" + std::to_string(i));
    cs.close(i * 1000 + 999);
    owned.push_back(std::move(cs));
  }
  std::vector<const Changeset*> parts;
  for (const auto& cs : owned) parts.push_back(&cs);
  const Changeset multi = synthesize_multi(parts);
  EXPECT_EQ(multi.labels().size(), std::size_t(k));
  EXPECT_EQ(multi.size(), total_records);
}

INSTANTIATE_TEST_SUITE_P(Ks, SynthesizeSweep, ::testing::Values(2, 3, 4, 5, 8));

}  // namespace
}  // namespace praxi::fs
