// Tests for the observability subsystem (src/obs): registry semantics
// (kind/bucket conflicts, label canonicalization, the enabled gate),
// histogram bucket boundaries, exposition goldens (Prometheus text and
// JSON, byte-exact — the renderers are deterministic by design), a
// concurrency smoke test sized for TSan, and the DiscoveryServer
// integration (per-stage instruments advance during process()).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "eval/harness.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "pkg/dataset.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace praxi::obs {
namespace {

TEST(Counter, IncrementsAndReads) {
  MetricsRegistry registry;
  Counter& c = registry.counter("praxi_test_events_total", "Events");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("praxi_test_queue_depth", "Depth");
  g.set(10.0);
  g.add(2.5);
  g.sub(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("praxi_test_latency_seconds", "Latency",
                                    {1.0, 2.0, 5.0});
  // A value exactly on a bound lands in that bound's bucket (v <= bound,
  // matching Prometheus `le` semantics).
  h.observe(1.0);
  h.observe(1.0000001);
  h.observe(5.0);
  h.observe(6.0);  // above every bound -> +Inf
  EXPECT_EQ(h.bucket_count(0), 1u);  // le=1
  EXPECT_EQ(h.bucket_count(1), 1u);  // le=2
  EXPECT_EQ(h.bucket_count(2), 1u);  // le=5
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 13.0000001, 1e-6);
}

TEST(Histogram, DefaultBucketLayoutsAscend) {
  for (const auto& buckets :
       {latency_buckets(), size_buckets(), count_buckets()}) {
    ASSERT_FALSE(buckets.empty());
    for (std::size_t i = 1; i < buckets.size(); ++i) {
      EXPECT_LT(buckets[i - 1], buckets[i]);
    }
  }
}

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("praxi_test_events_total", "Events",
                                {{"stage", "x"}, {"agent", "a"}});
  // Labels are canonicalized by sorting on key, so order must not matter.
  Counter& b = registry.counter("praxi_test_events_total", "Events",
                                {{"agent", "a"}, {"stage", "x"}});
  EXPECT_EQ(&a, &b);
  Counter& other = registry.counter("praxi_test_events_total", "Events",
                                    {{"agent", "b"}, {"stage", "x"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistry, KindConflictsThrow) {
  MetricsRegistry registry;
  registry.counter("praxi_test_events_total", "Events");
  EXPECT_THROW(registry.gauge("praxi_test_events_total", "Events"),
               std::logic_error);
  registry.histogram("praxi_test_latency_seconds", "Latency", {1.0, 2.0});
  EXPECT_THROW(
      registry.histogram("praxi_test_latency_seconds", "Latency", {1.0, 3.0}),
      std::logic_error);
  EXPECT_THROW(
      registry.histogram("praxi_test_backwards_seconds", "Bad", {2.0, 1.0}),
      std::logic_error);
}

TEST(MetricsRegistry, EnabledGateFreezesValuesWithoutInvalidatingHandles) {
  MetricsRegistry registry;
  Counter& c = registry.counter("praxi_test_events_total", "Events");
  Gauge& g = registry.gauge("praxi_test_queue_depth", "Depth");
  Histogram& h =
      registry.histogram("praxi_test_latency_seconds", "Latency", {1.0});
  c.inc();
  g.set(5.0);
  h.observe(0.5);

  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
  c.inc(100);
  g.set(99.0);
  g.add(1.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  EXPECT_EQ(h.count(), 1u);

  registry.set_enabled(true);
  c.inc();
  EXPECT_EQ(c.value(), 2u);
}

TEST(MetricsRegistry, ResetValuesZeroesButKeepsHandles) {
  MetricsRegistry registry;
  Counter& c = registry.counter("praxi_test_events_total", "Events");
  Histogram& h =
      registry.histogram("praxi_test_latency_seconds", "Latency", {1.0});
  c.inc(7);
  h.observe(0.5);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(registry.counter_value("praxi_test_events_total"), 1u);
}

TEST(MetricsRegistry, CounterValueLookup) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter_value("praxi_test_missing_total"), 0u);
  Counter& c = registry.counter("praxi_test_events_total", "Events",
                                {{"outcome", "ok"}});
  c.inc(3);
  EXPECT_EQ(registry.counter_value("praxi_test_events_total",
                                   {{"outcome", "ok"}}),
            3u);
  EXPECT_EQ(registry.counter_value("praxi_test_events_total",
                                   {{"outcome", "bad"}}),
            0u);
}

TEST(ScopedTimer, FeedsHistogramOnceAndStopIsIdempotent) {
  MetricsRegistry registry;
  Histogram& h =
      registry.histogram("praxi_test_span_seconds", "Span", {1e9});
  {
    ScopedTimer timer(h);
    const double first = timer.stop();
    EXPECT_GE(first, 0.0);
    timer.stop();  // second stop must not observe again
  }                // neither must the destructor
  EXPECT_EQ(h.count(), 1u);
}

// ---------------------------------------------------------------------------
// Exposition goldens — byte-exact against a registry with known contents.
// ---------------------------------------------------------------------------

/// Registry fixture with one instrument of each kind and values chosen to
/// format without floating-point noise.
void fill_golden(MetricsRegistry& registry) {
  registry.counter("praxi_test_events_total", "Events", {{"stage", "a"}})
      .inc(3);
  registry.gauge("praxi_test_queue_depth", "Depth").set(2.5);
  Histogram& h = registry.histogram("praxi_test_latency_seconds", "Latency",
                                    {1.0, 2.0, 5.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);
}

TEST(RenderPrometheus, Golden) {
  MetricsRegistry registry;
  fill_golden(registry);
  const std::string expected =
      "# HELP praxi_test_events_total Events\n"
      "# TYPE praxi_test_events_total counter\n"
      "praxi_test_events_total{stage=\"a\"} 3\n"
      "# HELP praxi_test_latency_seconds Latency\n"
      "# TYPE praxi_test_latency_seconds histogram\n"
      "praxi_test_latency_seconds_bucket{le=\"1\"} 1\n"
      "praxi_test_latency_seconds_bucket{le=\"2\"} 2\n"
      "praxi_test_latency_seconds_bucket{le=\"5\"} 2\n"
      "praxi_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "praxi_test_latency_seconds_sum 12\n"
      "praxi_test_latency_seconds_count 3\n"
      "# HELP praxi_test_queue_depth Depth\n"
      "# TYPE praxi_test_queue_depth gauge\n"
      "praxi_test_queue_depth 2.5\n";
  EXPECT_EQ(render_prometheus(registry), expected);
}

TEST(RenderPrometheus, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("praxi_test_events_total", "Events",
                   {{"agent", "a\"b\\c\nd"}})
      .inc();
  const std::string out = render_prometheus(registry);
  EXPECT_NE(out.find("agent=\"a\\\"b\\\\c\\nd\""), std::string::npos) << out;
}

TEST(RenderJson, Golden) {
  MetricsRegistry registry;
  fill_golden(registry);
  const std::string expected =
      "{\n"
      "  \"praxi_test_events_total\": {\"type\": \"counter\", \"help\": "
      "\"Events\", \"series\": [\n"
      "    {\"labels\": {\"stage\": \"a\"}, \"value\": 3}\n"
      "  ]},\n"
      "  \"praxi_test_latency_seconds\": {\"type\": \"histogram\", \"help\": "
      "\"Latency\", \"series\": [\n"
      "    {\"labels\": {}, \"count\": 3, \"sum\": 12, \"buckets\": "
      "{\"1\": 1, \"2\": 2, \"5\": 2, \"+Inf\": 3}}\n"
      "  ]},\n"
      "  \"praxi_test_queue_depth\": {\"type\": \"gauge\", \"help\": "
      "\"Depth\", \"series\": [\n"
      "    {\"labels\": {}, \"value\": 2.5}\n"
      "  ]}\n"
      "}\n";
  EXPECT_EQ(render_json(registry), expected);
}

TEST(RenderJson, EmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(render_json(registry), "{}\n");
  EXPECT_EQ(render_prometheus(registry), "");
}

// ---------------------------------------------------------------------------
// Concurrency smoke test — sized so TSan (tools/check.sh --tsan-obs) gets
// real interleavings; with atomics-only fast paths the final values must
// still be exact.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ConcurrentUpdatesAndCollects) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  Counter& c = registry.counter("praxi_test_events_total", "Events");
  Gauge& g = registry.gauge("praxi_test_queue_depth", "Depth");
  Histogram& h = registry.histogram("praxi_test_latency_seconds", "Latency",
                                    {0.25, 0.5, 1.0});

  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1.0);
        g.sub(1.0);
        h.observe(double(t % 4) * 0.25);
        // Registration from multiple threads must also be safe and
        // always return the same handle.
        Counter& mine = registry.counter("praxi_test_races_total", "Races",
                                         {{"thread", std::to_string(t)}});
        mine.inc();
      }
    });
  }
  // A reader snapshotting concurrently with the writers.
  workers.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      const auto families = registry.collect();
      (void)families;
      (void)render_prometheus(registry);
    }
  });
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), std::uint64_t(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.counter_value("praxi_test_races_total",
                                     {{"thread", std::to_string(t)}}),
              std::uint64_t(kIters));
  }
}

// ---------------------------------------------------------------------------
// Pipeline integration: the global registry's stage instruments advance
// while a DiscoveryServer processes reports.
// ---------------------------------------------------------------------------

class ObsIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto catalog = pkg::Catalog::subset(42, 8, 0);
    pkg::DatasetBuilder builder(catalog, 7);
    pkg::CollectOptions options;
    options.samples_per_app = 4;
    dataset_ = new pkg::Dataset(builder.collect_dirty(options));
    model_ = new core::Praxi();
    model_->train_changesets(eval::pointers(*dataset_));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete model_;
  }

  static pkg::Dataset* dataset_;
  static core::Praxi* model_;
};

pkg::Dataset* ObsIntegrationTest::dataset_ = nullptr;
core::Praxi* ObsIntegrationTest::model_ = nullptr;

/// Count of one histogram series in the global registry, 0 if absent.
std::uint64_t histogram_count(const std::string& name, const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& family : MetricsRegistry::global().collect()) {
    if (family.name != name) continue;
    for (const auto& series : family.series) {
      if (series.labels == sorted) return series.count;
    }
  }
  return 0;
}

TEST_F(ObsIntegrationTest, ServerProcessAdvancesStageInstruments) {
  service::DiscoveryServer server(*model_);
  const Labels by_server{{"server", server.server_label()}};

  const auto columbus_before = MetricsRegistry::global().counter_value(
      "praxi_columbus_extractions_total");
  EXPECT_EQ(histogram_count("praxi_server_process_seconds", by_server), 0u);

  service::MessageBus bus;
  for (std::size_t i = 0; i < 3; ++i) {
    service::ChangesetReport report;
    report.agent_id = "vm-obs";
    report.sequence = i;
    report.changeset = dataset_->changesets.at(i);
    bus.send(report.to_wire());
  }
  bus.send("definitely not a frame");
  server.process(bus);

  EXPECT_EQ(histogram_count("praxi_server_process_seconds", by_server), 1u);
  EXPECT_GT(MetricsRegistry::global().counter_value(
                "praxi_columbus_extractions_total"),
            columbus_before);
  EXPECT_EQ(MetricsRegistry::global().counter_value(
                "praxi_server_reports_total",
                {{"server", server.server_label()},
                 {"agent", "vm-obs"},
                 {"outcome", "processed"}}),
            3u);
  EXPECT_EQ(
      MetricsRegistry::global().counter_value(
          "praxi_server_reports_total",
          {{"server", server.server_label()},
           {"agent", service::DiscoveryServer::kUnattributedAgent},
           {"outcome", "malformed"}}),
      1u);
  // The thin view over the registry agrees with the raw counters.
  EXPECT_EQ(server.processed(), 3u);
  EXPECT_EQ(server.malformed(), 1u);
  const auto stats = server.ingest_stats();
  ASSERT_EQ(stats.count("vm-obs"), 1u);
  EXPECT_EQ(stats.at("vm-obs").processed, 3u);
}

TEST_F(ObsIntegrationTest, SnapshotPublishResyncsOccupancyGauges) {
  // The learner maintains praxi_ml_used_weight_slots incrementally; a
  // snapshot publish must re-sync it from the weight table so the gauge
  // cannot drift across epoch swaps. Poison the gauge, publish, and it must
  // come back to the same model-determined value every time.
  Gauge& used = MetricsRegistry::global().gauge(
      "praxi_ml_used_weight_slots", "Nonzero weight-table slots",
      {{"reduction", "oaa"}});
  used.set(-1.0);

  // from_binary ends with a publish (docs/API.md), which re-syncs.
  core::Praxi restored = core::Praxi::from_binary(model_->to_binary());
  const double synced = used.value();
  EXPECT_GT(synced, 0.0) << "publish must overwrite the poisoned gauge";

  used.set(1e9);  // drift again, no model change in between
  restored.publish();
  EXPECT_DOUBLE_EQ(used.value(), synced)
      << "publish must re-derive the gauge from the weight table";
}

TEST_F(ObsIntegrationTest, MlAndEngineInstrumentsCarryData) {
  // The fixture already trained and the test above predicted, so the
  // learner/engine families must exist with nonzero activity.
  EXPECT_GT(MetricsRegistry::global().counter_value("praxi_ml_updates_total",
                                                    {{"reduction", "oaa"}}),
            0u);
  bool found_train = false;
  for (const auto& family : MetricsRegistry::global().collect()) {
    if (family.name == "praxi_engine_train_seconds") {
      ASSERT_FALSE(family.series.empty());
      EXPECT_GT(family.series.front().count, 0u);
      found_train = true;
    }
  }
  EXPECT_TRUE(found_train);
}

}  // namespace
}  // namespace praxi::obs
