// Tests for the string/path utilities (common/strings.hpp).
#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace praxi {
namespace {

TEST(Split, DropsEmptyFields) {
  EXPECT_EQ(split("/usr//bin/", '/'),
            (std::vector<std::string>{"usr", "bin"}));
  EXPECT_EQ(split("", '/'), (std::vector<std::string>{}));
  EXPECT_EQ(split("///", '/'), (std::vector<std::string>{}));
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitKeepEmpty, PreservesEmptyFields) {
  EXPECT_EQ(split_keep_empty("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split_keep_empty("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split_keep_empty("x\n", '\n'),
            (std::vector<std::string>{"x", ""}));
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"etc", "mysql", "conf.d"};
  EXPECT_EQ(join(parts, "/"), "etc/mysql/conf.d");
  EXPECT_EQ(split(join(parts, "/"), '/'), parts);
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MySQL-Server_5.7"), "mysql-server_5.7");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Basename, Cases) {
  EXPECT_EQ(basename("/usr/bin/mysqld"), "mysqld");
  EXPECT_EQ(basename("mysqld"), "mysqld");
  EXPECT_EQ(basename("/usr/bin/"), "");
  EXPECT_EQ(basename("/"), "");
}

TEST(Dirname, Cases) {
  EXPECT_EQ(dirname("/usr/bin/mysqld"), "/usr/bin");
  EXPECT_EQ(dirname("/mysqld"), "/");
  EXPECT_EQ(dirname("mysqld"), "");
}

TEST(NormalizePath, CollapsesAndRoots) {
  EXPECT_EQ(normalize_path("usr//bin/"), "/usr/bin");
  EXPECT_EQ(normalize_path("/usr/bin"), "/usr/bin");
  EXPECT_EQ(normalize_path("/"), "/");
  EXPECT_EQ(normalize_path(""), "/");
  EXPECT_EQ(normalize_path("///a///b///"), "/a/b");
}

TEST(PathHasPrefix, ComponentAware) {
  EXPECT_TRUE(path_has_prefix("/usr/lib/mysql", "/usr/lib"));
  EXPECT_TRUE(path_has_prefix("/usr/lib", "/usr/lib"));
  EXPECT_FALSE(path_has_prefix("/usr/lib64", "/usr/lib"));
  EXPECT_TRUE(path_has_prefix("/anything", "/"));
  EXPECT_FALSE(path_has_prefix("/usr", "/usr/lib"));
  EXPECT_FALSE(path_has_prefix("/usr", ""));
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(5 * 1024 * 1024), "5.0 MB");
  EXPECT_EQ(format_bytes(3ull * 1024 * 1024 * 1024), "3.0 GB");
}

TEST(FormatDuration, SecondsAndMinutes) {
  EXPECT_EQ(format_duration_s(1.5), "1.50s");
  EXPECT_EQ(format_duration_s(90.0), "1m 30.0s");
  EXPECT_EQ(format_duration_s(0.01), "0.01s");
}

}  // namespace
}  // namespace praxi
