// Tests for the synthetic package catalog (pkg/catalog.hpp): corpus shape
// (Table II), the hand-built mysql-server footprint (Table I), naming
// practices, and cross-package payload uniqueness.
#include "pkg/catalog.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/strings.hpp"

namespace praxi::pkg {
namespace {

TEST(Catalog, StandardCorpusShapeMatchesTableII) {
  const Catalog catalog = Catalog::standard(42);
  EXPECT_EQ(catalog.repository_names().size(), 73u);
  EXPECT_EQ(catalog.manual_names().size(), 10u);
  EXPECT_EQ(catalog.application_count(), 83u);
  EXPECT_FALSE(catalog.dependency_names().empty());
}

TEST(Catalog, SevenOfTenManualInstallsCompileFromSource) {
  const Catalog catalog = Catalog::standard(42);
  int compiled = 0;
  for (const auto& name : catalog.manual_names()) {
    compiled += is_source_build(catalog.get(name));
  }
  EXPECT_EQ(compiled, 7);
}

TEST(Catalog, MysqlServerFootprintMatchesTableI) {
  const Catalog catalog = Catalog::standard(42);
  const PackageSpec& mysql = catalog.get("mysql-server");
  EXPECT_EQ(mysql.footprint_size(), 131u);

  std::map<std::string, int> counts;
  int elsewhere = 0;
  for (const auto& file : mysql.files) {
    bool matched = false;
    for (const char* ns :
         {"/usr/share/man/man1", "/usr/bin", "/etc", "/var/lib/dpkg/info",
          "/usr/share/doc"}) {
      if (path_has_prefix(file.path, ns)) {
        ++counts[ns];
        matched = true;
        break;
      }
    }
    if (!matched) ++elsewhere;
  }
  EXPECT_EQ(counts["/usr/share/man/man1"], 27);
  EXPECT_EQ(counts["/usr/bin"], 26);
  EXPECT_EQ(counts["/etc"], 24);
  EXPECT_EQ(counts["/var/lib/dpkg/info"], 24);
  EXPECT_EQ(counts["/usr/share/doc"], 7);
  EXPECT_EQ(elsewhere, 23);
}

TEST(Catalog, MysqlServerIsFullyStable) {
  // Table I reproduction requires a deterministic 131-file installation.
  const Catalog catalog = Catalog::standard(42);
  for (const auto& file : catalog.get("mysql-server").files) {
    EXPECT_EQ(file.optional_probability, 0.0) << file.path;
    EXPECT_EQ(file.version_variants, 0) << file.path;
  }
}

TEST(Catalog, DeterministicForSameSeed) {
  const Catalog a = Catalog::standard(7);
  const Catalog b = Catalog::standard(7);
  for (const auto& name : a.application_names()) {
    const PackageSpec& sa = a.get(name);
    const PackageSpec& sb = b.get(name);
    ASSERT_EQ(sa.files.size(), sb.files.size()) << name;
    for (std::size_t i = 0; i < sa.files.size(); ++i) {
      EXPECT_EQ(sa.files[i].path, sb.files[i].path);
    }
    EXPECT_EQ(sa.deps, sb.deps);
    EXPECT_EQ(sa.version, sb.version);
  }
}

TEST(Catalog, DifferentSeedsVaryFootprints) {
  const Catalog a = Catalog::standard(7);
  const Catalog b = Catalog::standard(8);
  int differing = 0;
  for (const auto& name : a.application_names()) {
    if (name == "mysql-server") continue;  // hand-built, seed-independent
    if (a.get(name).files.size() != b.get(name).files.size()) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(Catalog, NoPayloadPathSharedBetweenPackages) {
  const Catalog catalog = Catalog::standard(42);
  std::set<std::string> seen;
  auto check = [&](const std::string& name) {
    for (const auto& file : catalog.get(name).files) {
      EXPECT_TRUE(seen.insert(file.path).second)
          << "duplicate payload path " << file.path << " (in " << name << ")";
    }
  };
  for (const auto& name : catalog.application_names()) check(name);
  for (const auto& name : catalog.dependency_names()) check(name);
}

TEST(Catalog, StemPrefixPracticeHolds) {
  // The practice Columbus exploits: every application ships at least one
  // file whose basename starts with the package stem.
  const Catalog catalog = Catalog::standard(42);
  for (const auto& name : catalog.application_names()) {
    const PackageSpec& spec = catalog.get(name);
    bool found = false;
    for (const auto& file : spec.files) {
      if (std::string(basename(file.path)).rfind(spec.stem, 0) == 0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << name << " has no stem-prefixed file";
  }
}

TEST(Catalog, DependenciesResolveAndAreDependencyPackages) {
  const Catalog catalog = Catalog::standard(42);
  for (const auto& name : catalog.application_names()) {
    for (const auto& dep : catalog.get(name).deps) {
      const PackageSpec* spec = catalog.find(dep);
      ASSERT_NE(spec, nullptr) << name << " depends on unknown " << dep;
      EXPECT_TRUE(spec->is_dependency);
    }
  }
}

TEST(Catalog, SubsetLimitsApplicationsButKeepsDependencyPool) {
  const Catalog subset = Catalog::subset(42, 12, 3);
  EXPECT_EQ(subset.repository_names().size(), 12u);
  EXPECT_EQ(subset.manual_names().size(), 3u);
  const Catalog full = Catalog::standard(42);
  EXPECT_EQ(subset.dependency_names().size(),
            full.dependency_names().size());
  // Subset is a prefix of the full catalog.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(subset.repository_names()[i], full.repository_names()[i]);
  }
}

TEST(Catalog, SubsetClampsOversizedRequests) {
  const Catalog catalog = Catalog::subset(42, 1000, 1000);
  EXPECT_EQ(catalog.repository_names().size(), 73u);
  EXPECT_EQ(catalog.manual_names().size(), 10u);
}

TEST(Catalog, GetThrowsOnUnknownFindReturnsNull) {
  const Catalog catalog = Catalog::subset(42, 2, 0);
  EXPECT_THROW(catalog.get("no-such-package"), std::invalid_argument);
  EXPECT_EQ(catalog.find("no-such-package"), nullptr);
  EXPECT_TRUE(catalog.contains("mysql-server"));
}

TEST(Catalog, ManualPackagesLandOutsideSystemPrefixes) {
  const Catalog catalog = Catalog::standard(42);
  for (const auto& name : catalog.manual_names()) {
    for (const auto& file : catalog.get(name).files) {
      EXPECT_TRUE(path_has_prefix(file.path, "/usr/local") ||
                  path_has_prefix(file.path, "/opt"))
          << name << " ships " << file.path;
    }
  }
}

TEST(Catalog, RepositoryPackagesCarryDpkgMetadata) {
  const Catalog catalog = Catalog::standard(42);
  for (const auto& name : catalog.repository_names()) {
    bool has_dpkg = false;
    for (const auto& file : catalog.get(name).files) {
      has_dpkg |= path_has_prefix(file.path, "/var/lib/dpkg/info");
    }
    EXPECT_TRUE(has_dpkg) << name;
  }
}

TEST(Catalog, VersionedCorpusShape) {
  const Catalog catalog = Catalog::versioned(42, 6, 3);
  EXPECT_EQ(catalog.application_count(), 18u);
  for (const auto& name : catalog.repository_names()) {
    EXPECT_NE(name.find("@v"), std::string::npos) << name;
  }
  EXPECT_TRUE(catalog.contains("mysql-server@v1"));
  EXPECT_TRUE(catalog.contains("mysql-server@v3"));
}

TEST(Catalog, VersionedReleasesShareMostOfTheirFootprint) {
  const Catalog catalog = Catalog::versioned(42, 6, 2);
  const PackageSpec& v1 = catalog.get("mysql-server@v1");
  const PackageSpec& v2 = catalog.get("mysql-server@v2");
  std::set<std::string> v1_paths, v2_paths;
  for (const auto& f : v1.files) v1_paths.insert(f.path);
  for (const auto& f : v2.files) v2_paths.insert(f.path);
  std::size_t shared = 0;
  for (const auto& path : v1_paths) shared += v2_paths.count(path);
  // Most paths shared, but not all (release-specific renames + changelog).
  EXPECT_GT(shared, v1_paths.size() / 2);
  EXPECT_LT(shared, v1_paths.size());
}

TEST(Catalog, VersionedReleasesShipDistinctChangelogs) {
  const Catalog catalog = Catalog::versioned(42, 3, 2);
  const PackageSpec& v1 = catalog.get("postgresql@v1");
  bool found = false;
  for (const auto& f : v1.files) {
    found |= f.path.find("changelog-v1") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace praxi::pkg
