// Negative-compile seed for the Thread Safety Analysis lane
// (tools/check.sh --tsa, docs/CONCURRENCY.md).
//
// This file is NOT part of any build target. The --tsa lane (and
// sync_test's TsaNegativeCompile case) compiles it standalone with
// `clang++ -fsyntax-only -Werror=thread-safety`, twice:
//
//   * without PRAXI_NEGCOMPILE_LOCKED the guarded field is read with no
//     lock held, and the compile MUST FAIL — proving the analysis
//     actually rejects violations (a lane that only ever sees clean code
//     proves nothing);
//   * with PRAXI_NEGCOMPILE_LOCKED the same read happens under a
//     LockGuard and the compile MUST SUCCEED — the positive control that
//     the failure above is the TSA diagnostic, not an unrelated error.
#include "common/annotations.hpp"
#include "common/sync.hpp"

namespace praxi {

class NegCompileSeed {
 public:
  int read_guarded() const PRAXI_EXCLUDES(mutex_) {
#if defined(PRAXI_NEGCOMPILE_LOCKED)
    common::LockGuard lock(mutex_);
#endif
    return value_;  // unguarded read: -Werror=thread-safety rejects this
  }

 private:
  mutable common::Mutex mutex_{"negcompile_seed",
                               common::LockRank::kThreadPool};
  int value_ PRAXI_GUARDED_BY(mutex_) = 0;
};

int touch_seed() { return NegCompileSeed{}.read_guarded(); }

}  // namespace praxi
