// Tests for MurmurHash3 (common/hash.hpp): reference vectors, determinism,
// tail handling, and distribution sanity for the feature-hashing use case.
#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace praxi {
namespace {

TEST(Murmur3_32, EmptyStringReferenceVectors) {
  // Canonical vectors from the SMHasher verification suite.
  EXPECT_EQ(murmur3_32("", 0), 0u);
  EXPECT_EQ(murmur3_32("", 1), 0x514E28B7u);
  EXPECT_EQ(murmur3_32("", 0xFFFFFFFFu), 0x81F16F39u);
}

TEST(Murmur3_32, Deterministic) {
  const std::string input = "/usr/bin/mysqldump";
  EXPECT_EQ(murmur3_32(input), murmur3_32(input));
  EXPECT_EQ(murmur3_32(input, 7), murmur3_32(input, 7));
}

TEST(Murmur3_32, SeedChangesOutput) {
  EXPECT_NE(murmur3_32("mysql", 0), murmur3_32("mysql", 1));
}

TEST(Murmur3_32, SingleCharacterDifferenceChangesOutput) {
  EXPECT_NE(murmur3_32("mysqld"), murmur3_32("mysqle"));
  EXPECT_NE(murmur3_32("aaaa"), murmur3_32("aaab"));
}

TEST(Murmur3_32, AllTailLengthsDistinct) {
  // Exercise every tail-switch branch: lengths 0..17 of a repeated char
  // must hash to pairwise distinct values (with overwhelming probability).
  std::set<std::uint32_t> seen;
  for (int len = 0; len <= 17; ++len) {
    seen.insert(murmur3_32(std::string(static_cast<std::size_t>(len), 'x')));
  }
  EXPECT_EQ(seen.size(), 18u);
}

TEST(Murmur3_32, PrefixesDoNotCollideTrivially) {
  const std::string base = "columbus-frequency-trie";
  std::set<std::uint32_t> seen;
  for (std::size_t len = 1; len <= base.size(); ++len) {
    seen.insert(murmur3_32(base.substr(0, len)));
  }
  EXPECT_EQ(seen.size(), base.size());
}

TEST(Murmur3_128Low64, DeterministicAndSeedSensitive) {
  EXPECT_EQ(murmur3_128_low64("praxi"), murmur3_128_low64("praxi"));
  EXPECT_NE(murmur3_128_low64("praxi", 0), murmur3_128_low64("praxi", 1));
  EXPECT_NE(murmur3_128_low64("praxi"), murmur3_128_low64("praxj"));
}

TEST(Murmur3_128Low64, LongInputsCoverBlockLoop) {
  // > 16 bytes exercises the 128-bit block loop, not just the tail.
  std::string long_a(100, 'a');
  std::string long_b = long_a;
  long_b[50] = 'b';
  EXPECT_NE(murmur3_128_low64(long_a), murmur3_128_low64(long_b));
}

TEST(HashCombine, OrderSensitive) {
  const std::uint64_t a = murmur3_128_low64("a");
  const std::uint64_t b = murmur3_128_low64("b");
  EXPECT_NE(hash_combine(hash_combine(0, a), b),
            hash_combine(hash_combine(0, b), a));
}

// Distribution sanity across a hashed feature space: for the learner's
// hashing trick, buckets of a realistic token population should spread out.
class HashDistributionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HashDistributionTest, TokensSpreadAcrossBuckets) {
  const unsigned bits = GetParam();
  const std::uint32_t mask = (1u << bits) - 1;
  std::set<std::uint32_t> buckets;
  const int tokens = 1 << (bits - 2);  // quarter-load the table
  for (int i = 0; i < tokens; ++i) {
    buckets.insert(murmur3_32("token-" + std::to_string(i)) & mask);
  }
  // With load factor 0.25, expected distinct fraction is ~88.5%; demand 80%.
  EXPECT_GT(buckets.size(), std::size_t(tokens) * 8 / 10);
}

INSTANTIATE_TEST_SUITE_P(Widths, HashDistributionTest,
                         ::testing::Values(10u, 14u, 18u));

}  // namespace
}  // namespace praxi
