// Tests for the RBF-kernel SVM (ml/kernel_svm.hpp): multiclass and
// multi-label learning, the median-heuristic gamma, and serialization.
#include "ml/kernel_svm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace praxi::ml {
namespace {

/// Gaussian blob dataset: class c is centered at 2*e_c in `dim` dimensions.
struct Blobs {
  std::vector<std::vector<float>> X;
  std::vector<std::vector<std::uint32_t>> y;
};

Blobs make_blobs(std::uint32_t classes, int per_class, unsigned dim,
                 double spread, std::uint64_t seed) {
  Blobs blobs;
  Rng rng(seed);
  for (std::uint32_t c = 0; c < classes; ++c) {
    for (int i = 0; i < per_class; ++i) {
      std::vector<float> x(dim);
      for (unsigned d = 0; d < dim; ++d) {
        x[d] = float(spread * rng.normal() + (d == c ? 2.0 : 0.0));
      }
      blobs.X.push_back(std::move(x));
      blobs.y.push_back({c});
    }
  }
  return blobs;
}

TEST(RbfSvmOva, SeparatesGaussianBlobs) {
  const Blobs train = make_blobs(4, 40, 8, 0.4, 1);
  RbfSvmOva svm;
  svm.train(train.X, train.y, 4);

  const Blobs test = make_blobs(4, 10, 8, 0.4, 2);
  int correct = 0;
  for (std::size_t i = 0; i < test.X.size(); ++i) {
    correct += svm.predict(test.X[i]) == test.y[i][0];
  }
  EXPECT_GE(correct, 38);  // >= 95%
}

TEST(RbfSvmOva, MedianHeuristicAdaptsToScale) {
  // Identical geometry at two very different scales must yield accordingly
  // different gammas (and both must classify well).
  const Blobs coarse = make_blobs(3, 30, 6, 0.4, 3);
  Blobs fine = coarse;
  for (auto& x : fine.X) {
    for (auto& v : x) v *= 0.01f;
  }
  RbfSvmOva svm_coarse, svm_fine;
  svm_coarse.train(coarse.X, coarse.y, 3);
  svm_fine.train(fine.X, fine.y, 3);
  EXPECT_GT(svm_fine.effective_gamma(), svm_coarse.effective_gamma() * 100);

  int correct = 0;
  for (std::size_t i = 0; i < fine.X.size(); ++i) {
    correct += svm_fine.predict(fine.X[i]) == fine.y[i][0];
  }
  EXPECT_GT(correct, int(fine.X.size() * 9 / 10));
}

TEST(RbfSvmOva, ExplicitGammaRespected) {
  RbfSvmConfig config;
  config.gamma = 2.5;
  RbfSvmOva svm(config);
  const Blobs blobs = make_blobs(2, 10, 4, 0.3, 4);
  svm.train(blobs.X, blobs.y, 2);
  EXPECT_DOUBLE_EQ(svm.effective_gamma(), 2.5);
}

TEST(RbfSvmOva, MultiLabelTopN) {
  // Samples carry two positive classes; top-2 prediction must recover both.
  Rng rng(5);
  std::vector<std::vector<float>> X;
  std::vector<std::vector<std::uint32_t>> y;
  for (int i = 0; i < 200; ++i) {
    const auto a = std::uint32_t(rng.below(5));
    auto b = std::uint32_t(rng.below(5));
    while (b == a) b = std::uint32_t(rng.below(5));
    std::vector<float> x(10, 0.0f);
    for (std::uint32_t c : {a, b}) {
      x[c * 2] = 1.0f + float(0.2 * rng.normal());
      x[c * 2 + 1] = 1.0f + float(0.2 * rng.normal());
    }
    X.push_back(std::move(x));
    y.push_back({a, b});
  }
  RbfSvmOva svm;
  svm.train(X, y, 5);

  int hits = 0, total = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const auto top2 = svm.predict_top_n(X[i], 2);
    for (std::uint32_t truth : y[i]) {
      ++total;
      hits += std::find(top2.begin(), top2.end(), truth) != top2.end();
    }
  }
  EXPECT_GT(double(hits) / total, 0.9);
}

TEST(RbfSvmOva, DecisionVectorSizedByClasses) {
  const Blobs blobs = make_blobs(3, 10, 4, 0.3, 6);
  RbfSvmOva svm;
  svm.train(blobs.X, blobs.y, 3);
  EXPECT_EQ(svm.decision(blobs.X[0]).size(), 3u);
  EXPECT_EQ(svm.num_classes(), 3u);
}

TEST(RbfSvmOva, InputValidation) {
  RbfSvmOva svm;
  EXPECT_THROW(svm.train({}, {}, 2), std::invalid_argument);
  EXPECT_THROW(svm.train({{1.0f}}, {{0}, {1}}, 2), std::invalid_argument);
  EXPECT_THROW(svm.train({{1.0f}}, {{5}}, 2), std::invalid_argument);
  EXPECT_THROW(svm.predict({1.0f}), std::logic_error);
}

TEST(RbfSvmOva, SupportVectorsBoundedByTrainingSet) {
  const Blobs blobs = make_blobs(3, 20, 4, 0.3, 7);
  RbfSvmOva svm;
  svm.train(blobs.X, blobs.y, 3);
  EXPECT_LE(svm.support_vector_count(), blobs.X.size());
  EXPECT_GT(svm.support_vector_count(), 0u);
  EXPECT_GT(svm.size_bytes(), 0u);
}

TEST(RbfSvmOva, BinaryRoundTripPredictsIdentically) {
  const Blobs blobs = make_blobs(3, 20, 4, 0.4, 8);
  RbfSvmOva svm;
  svm.train(blobs.X, blobs.y, 3);
  const RbfSvmOva loaded = RbfSvmOva::from_binary(svm.to_binary());
  for (const auto& x : blobs.X) {
    EXPECT_EQ(loaded.predict(x), svm.predict(x));
  }
  EXPECT_EQ(loaded.effective_gamma(), svm.effective_gamma());
}

TEST(RbfSvmOva, FromBinaryRejectsGarbage) {
  EXPECT_THROW(RbfSvmOva::from_binary("garbage"), SerializeError);
}

TEST(RbfSvmOva, GramCacheAndOnTheFlyAgree) {
  const Blobs blobs = make_blobs(2, 15, 4, 0.3, 9);
  RbfSvmConfig cached_config;
  cached_config.gram_cache_limit = 1000;
  RbfSvmConfig uncached_config;
  uncached_config.gram_cache_limit = 0;  // force on-the-fly kernel rows
  RbfSvmOva cached(cached_config), uncached(uncached_config);
  cached.train(blobs.X, blobs.y, 2);
  uncached.train(blobs.X, blobs.y, 2);
  for (const auto& x : blobs.X) {
    EXPECT_EQ(cached.predict(x), uncached.predict(x));
  }
}

TEST(RbfSvmOva, DimensionMismatchTreatedAsZeros) {
  const Blobs blobs = make_blobs(2, 15, 6, 0.3, 10);
  RbfSvmOva svm;
  svm.train(blobs.X, blobs.y, 2);
  // Shorter and longer query vectors are accepted.
  EXPECT_NO_THROW(svm.predict(std::vector<float>{1.0f, 2.0f}));
  EXPECT_NO_THROW(svm.predict(std::vector<float>(20, 0.5f)));
}

}  // namespace
}  // namespace praxi::ml
