#!/usr/bin/env python3
"""Project-invariant linter for the praxi tree (docs/STATIC_ANALYSIS.md).

Enforces the persistence-hardening invariants that PR 2 bought and that
generic compilers cannot check:

  raw-write        Snapshot writes must go through write_file_atomic() /
                   seal_snapshot(); a bare praxi::write_file() call in src/
                   is a torn-file hazard. Escape hatch for genuinely
                   non-snapshot output: `// praxi-lint: allow(raw-write...)`
                   on the same or previous line.
  missing-require-end
                   Every snapshot decoder (a `Class::from_binary` /
                   `Class::from_wire` definition) must drain its payload
                   with require_end(), directly or via a helper defined in
                   the same file — trailing bytes mean the envelope lied.
  undocumented-magic
                   Every envelope magic (`constexpr ... kFooMagic = 0x...;
                   // "XXXX"`) must have its four-char tag documented in
                   docs/PERSISTENCE.md.
  iostream-in-library
                   Library code takes std::ostream&; `#include <iostream>`
                   pulls in global streams + static init order hazards.
  naked-rand       rand()/srand() are unseeded, global, and irreproducible;
                   library code must use praxi::Rng.
  catch-by-value   Catching exception types by value slices subclasses
                   (VersionError -> SerializeError) and copies; catch by
                   (const) reference.

Plus the observability invariants from the instrumented-API PR
(docs/OBSERVABILITY.md, docs/API.md):

  metric-naming    Instrument registrations must follow the catalog naming
                   scheme: `praxi_<component>_<name>[_unit]`, lowercase
                   [a-z0-9_]; counters end in `_total`, histograms in
                   `_seconds` / `_bytes` / `_count`, gauges carry no
                   counter suffix. A registration that drifts from the
                   scheme silently forks the metric namespace.
  data-plane-catch The error-surface contract (docs/API.md): data-plane
                   code may swallow an exception only if it records it
                   (increments an instrument) or reports it; otherwise it
                   must rethrow or preserve it. A catch block that does
                   none of these hides failures from operators. Escape
                   hatch: `// praxi-lint: allow(data-plane-catch: why)`.

And the transport invariant from the socket-transport PR (docs/SERVICE.md):

  blocking-socket  Raw socket syscalls (::socket, ::connect, ::send, ...)
                   are allowed only under src/net/, whose TcpStream /
                   TcpListener wrappers bound every operation with a
                   timeout. A syscall elsewhere can block a data-plane
                   thread forever on a dead peer. Escape hatch:
                   `// praxi-lint: allow(blocking-socket: why)`.

And the hot-path invariant from the arena-extraction PR
(docs/ALGORITHMS.md):

  columbus-hot-alloc
                   src/columbus/ hot-path files must not reintroduce
                   per-token heap allocation: no std::map<char,...> child
                   tables, no make_unique node allocation, and no calls to
                   the allocating split()/to_lower()/tokenize() helpers —
                   the arena pipeline (tokenize_views + SegmentInterner +
                   ArenaTrie) is the steady-state-zero-allocation
                   replacement for all of them. The legacy FrequencyTrie
                   translation unit is exempt (it IS the documented
                   allocating baseline). Escape hatch:
                   `// praxi-lint: allow(columbus-hot-alloc: why)`.

And the concurrency invariant from the thread-safety-annotations PR
(docs/CONCURRENCY.md):

  naked-mutex      std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable and friends are banned in src/
                   outside common/sync.hpp: an unannotated lock is
                   invisible to clang Thread Safety Analysis AND skips the
                   lock-rank deadlock checker. Use common::Mutex /
                   common::LockGuard / common::CondVar. Escape hatch (used
                   by the wrapper itself):
                   `// praxi-lint: allow(naked-mutex: why)`.

And the serve-while-learn invariant from the snapshot-API PR
(docs/API.md, docs/CONCURRENCY.md):

  weight-table-mutation
                   ml::detail::WeightTable belongs to the learner and the
                   snapshot publisher alone: predict paths read immutable
                   ModelSnapshots, so a WeightTable reference (or an
                   .update()/.set_raw() call on a table) anywhere else in
                   src/ would reopen the torn-read window the RCU snapshot
                   design closed. Escape hatch:
                   `// praxi-lint: allow(weight-table-mutation: why)`.

And the routing invariant from the sharded-cluster PR (docs/CLUSTER.md):

  ad-hoc-sharding  agent_id -> shard mapping must go through the
                   consistent-hash ring (cluster::HashRing): a `% shards`
                   style modulo mapping reshuffles nearly every key when
                   the shard count changes, orphaning per-agent dedup and
                   WAL state. Modulo-over-a-shard-count is banned in src/
                   outside src/cluster/ (the ring's own implementation).
                   Escape hatch: `// praxi-lint: allow(ad-hoc-sharding: why)`.

Usage:
  praxi_lint.py [--root REPO_ROOT]   lint <root>/src, report, exit 1 on hits
  praxi_lint.py --self-test          seed one violation per rule into a temp
                                     tree and assert each rule fires (and
                                     that a clean tree stays clean)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h"}

# Files allowed to mention bare write_file: its definition, and the
# in-memory filesystem whose member of the same name is simulation, not
# persistence.
RAW_WRITE_EXEMPT = {"src/common/serialize.cpp", "src/common/serialize.hpp",
                    "src/fs/filesystem.cpp", "src/fs/filesystem.hpp"}

ALLOW_RE = re.compile(r"praxi-lint:\s*allow\((?P<rule>[\w-]+)")
RAW_WRITE_RE = re.compile(r"(?<![.\w:>])write_file\s*\(")
MAGIC_RE = re.compile(
    r"constexpr\s+std::uint32_t\s+k\w*Magic\s*=\s*0x[0-9a-fA-F]+U?\s*;"
    r'\s*//\s*"(?P<tag>....)"')
MAGIC_NO_TAG_RE = re.compile(
    r"constexpr\s+std::uint32_t\s+k\w*Magic\s*=\s*0x[0-9a-fA-F]+U?\s*;")
IOSTREAM_RE = re.compile(r"#\s*include\s*<iostream>")
RAND_RE = re.compile(r"(?<![\w:.])s?rand\s*\(")
CATCH_RE = re.compile(
    r"catch\s*\(\s*(?:const\s+)?(?P<type>[\w:]*(?:Error|Exception|exception))"
    r"\s+(?!\s*&)(?P<name>\w+)?\s*\)")
DECODER_RE = re.compile(r"\b\w+::(?:from_binary|from_wire)\s*\(")

# Instrument registrations: `<registry>.counter("name", ...)` etc. The call
# frequently breaks the line after the open paren, so this runs over the
# whole (comment-stripped) file, not line by line.
METRIC_REG_RE = re.compile(
    r"\.\s*(?P<kind>counter|gauge|histogram)\s*\(\s*\"(?P<name>[^\"]*)\"")
METRIC_NAME_RE = re.compile(r"^praxi_[a-z0-9_]+$")
HISTOGRAM_SUFFIXES = ("_seconds", "_bytes", "_count")
CATCH_BLOCK_RE = re.compile(r"\bcatch\s*\(")
# What makes a catch handler acceptable: rethrowing, preserving the
# exception for later, recording to a metrics instrument, or reporting to
# a stream. Heuristic, like the rest of this linter.
CATCH_HANDLES_RE = re.compile(r"\bthrow\b|current_exception|\binc\s*\(|<<")

# Raw socket syscalls, allowed only under src/net/ (docs/SERVICE.md). The
# qualified form (`::send(...)`) is how the sanctioned wrappers call them;
# the lookbehind keeps `SocketClient::send(` (a method definition) out. The
# bare form lists only names that collide with nothing in this codebase.
BLOCKING_SOCKET_EXEMPT_PREFIX = "src/net/"
SOCKET_QUALIFIED_RE = re.compile(
    r"(?<![\w>])::(?:socket|bind|listen|accept4?|connect|recv|send|"
    r"recvfrom|sendto|shutdown|setsockopt|getsockopt|getsockname|poll)\s*\(")
SOCKET_BARE_RE = re.compile(
    r"(?<![\w:.])(?:accept4|recvfrom|sendto|setsockopt|getsockopt|"
    r"getsockname)\s*\(")

# Columbus hot-path allocation primitives (docs/ALGORITHMS.md). The legacy
# trie's own translation unit is the allocating baseline and stays exempt;
# everything else under src/columbus/ must use the arena pipeline. Note
# `tokenize(` deliberately does NOT match `tokenize_views(`.
COLUMBUS_HOT_PREFIX = "src/columbus/"
COLUMBUS_HOT_EXEMPT = {"src/columbus/frequency_trie.cpp",
                       "src/columbus/frequency_trie.hpp"}
COLUMBUS_ALLOC_RE = re.compile(
    r"std::map\s*<\s*char|make_unique\s*<|(?<![\w_])to_lower\s*\(|"
    r"(?<![\w_])tokenize\s*\(|(?<![\w_:.])split\s*\(")

# The only translation units allowed to touch ml::detail::WeightTable: the
# learner that trains it and the snapshot publisher that freezes it
# (docs/API.md). Everyone else predicts through immutable ModelSnapshots.
WEIGHT_TABLE_EXEMPT = {"src/ml/online_learner.hpp", "src/ml/online_learner.cpp",
                       "src/ml/model_snapshot.hpp", "src/ml/model_snapshot.cpp"}
WEIGHT_TABLE_RE = re.compile(r"\bWeightTable\b")
WEIGHT_TABLE_MUTATE_RE = re.compile(
    r"\w*[tT]able\w*\s*\.\s*(?:update|set_raw)\s*\(")

# Ad-hoc shard mapping (docs/CLUSTER.md): any modulo over a shard count
# (`hash % shards`, `id % num_shards_`, `% ring.shard_count()`) outside the
# ring's own implementation. Consistent hashing is the one sanctioned
# agent_id -> shard mapping; modulo reshuffles ~all keys on membership
# change, orphaning per-agent dedup/WAL state.
ADHOC_SHARDING_EXEMPT_PREFIX = "src/cluster/"
ADHOC_SHARDING_RE = re.compile(r"%\s*[\w.>()\[\]-]*shard", re.IGNORECASE)

# Raw standard-library synchronization primitives (docs/CONCURRENCY.md).
# Only the common/sync.hpp wrappers may touch them (via the allow()
# escape); everything else in src/ uses the annotated, rank-carrying
# common::Mutex/LockGuard/CondVar so both proof systems see every lock.
NAKED_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b|"
    r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
    r"\bstd::condition_variable(?:_any)?\b")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def line_allows(lines: list[str], index: int, rule: str) -> bool:
    """True when the line (or the one above it) carries an allow-comment."""
    for look in (index, index - 1):
        if 0 <= look < len(lines):
            match = ALLOW_RE.search(lines[look])
            if match and match.group("rule") == rule:
                return True
    return False


def function_bodies(text: str):
    """Yields (name, body) for every `name(...) { ... }` definition found by
    brace matching. Heuristic (no preprocessor, strings with braces can
    confuse it) but robust for this codebase's clang-format style."""
    for match in re.finditer(r"(?:[\w:~<>]+)\s*\(", text):
        name = match.group(0)[:-1].strip()
        # Find the opening brace after the matching close paren.
        depth, i = 1, match.end()
        while i < len(text) and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        j = i
        while j < len(text) and text[j] in " \t\r\n":
            j += 1
        if j >= len(text) or text[j] != "{":
            continue
        depth, k = 1, j + 1
        while k < len(text) and depth:
            if text[k] == "{":
                depth += 1
            elif text[k] == "}":
                depth -= 1
            k += 1
        yield name, match.start(), text[j:k]


def check_file(root: pathlib.Path, path: pathlib.Path) -> list[Violation]:
    rel = path.relative_to(root).as_posix()
    text = path.read_text(errors="replace")
    lines = text.splitlines()
    found: list[Violation] = []

    def scan(rule: str, regex: re.Pattern, message: str):
        for i, line in enumerate(lines):
            stripped = line.split("//", 1)[0]
            if regex.search(stripped) and not line_allows(lines, i, rule):
                found.append(Violation(rel, i + 1, rule, message))

    if rel not in RAW_WRITE_EXEMPT:
        scan("raw-write", RAW_WRITE_RE,
             "bare write_file() bypasses write_file_atomic(); snapshots "
             "must be crash-safe (or annotate: praxi-lint: allow(raw-write))")

    if not rel.startswith(BLOCKING_SOCKET_EXEMPT_PREFIX):
        socket_message = (
            "raw socket syscall outside src/net/; use the bounded "
            "TcpStream/TcpListener wrappers (docs/SERVICE.md) or annotate: "
            "praxi-lint: allow(blocking-socket)")
        scan("blocking-socket", SOCKET_QUALIFIED_RE, socket_message)
        scan("blocking-socket", SOCKET_BARE_RE, socket_message)

    if rel.startswith(COLUMBUS_HOT_PREFIX) and rel not in COLUMBUS_HOT_EXEMPT:
        scan("columbus-hot-alloc", COLUMBUS_ALLOC_RE,
             "per-token heap allocation primitive on the Columbus hot path; "
             "use the arena pipeline (tokenize_views + SegmentInterner + "
             "ArenaTrie) or annotate: praxi-lint: allow(columbus-hot-alloc)")

    if rel not in WEIGHT_TABLE_EXEMPT:
        weight_table_message = (
            "WeightTable mutation outside the learner/snapshot publisher; "
            "predict through an immutable ModelSnapshot (docs/API.md) or "
            "annotate: praxi-lint: allow(weight-table-mutation)")
        scan("weight-table-mutation", WEIGHT_TABLE_RE, weight_table_message)
        scan("weight-table-mutation", WEIGHT_TABLE_MUTATE_RE,
             weight_table_message)

    if not rel.startswith(ADHOC_SHARDING_EXEMPT_PREFIX):
        scan("ad-hoc-sharding", ADHOC_SHARDING_RE,
             "modulo over a shard count reshuffles ~all keys on membership "
             "change; map agent_id -> shard through cluster::HashRing "
             "(docs/CLUSTER.md) or annotate: praxi-lint: allow(ad-hoc-sharding)")

    scan("naked-mutex", NAKED_MUTEX_RE,
         "raw std:: synchronization primitive; use the annotated "
         "common::Mutex/LockGuard/CondVar (common/sync.hpp, "
         "docs/CONCURRENCY.md) or annotate: praxi-lint: allow(naked-mutex)")

    scan("iostream-in-library", IOSTREAM_RE,
         "library code must take std::ostream&, not include <iostream>")
    scan("naked-rand", RAND_RE,
         "rand()/srand() are unseeded and irreproducible; use praxi::Rng")
    scan("catch-by-value", CATCH_RE,
         "exception caught by value (slices subclasses); catch by "
         "(const) reference")

    # undocumented-magic: collect tags here; cross-checked against the doc
    # by the caller. A magic constant with no `// "XXXX"` tag comment at all
    # is flagged immediately — the tag is what the doc indexes by.
    for i, line in enumerate(lines):
        if MAGIC_NO_TAG_RE.search(line) and not MAGIC_RE.search(line) \
                and not line_allows(lines, i, "undocumented-magic"):
            found.append(Violation(
                rel, i + 1, "undocumented-magic",
                'envelope magic lacks its `// "XXXX"` tag comment'))

    # metric-naming and data-plane-catch both need cross-line context, so
    # they run on the comment-stripped full text rather than per line.
    stripped_text = "\n".join(line.split("//", 1)[0] for line in lines)

    for match in METRIC_REG_RE.finditer(stripped_text):
        kind, name = match.group("kind"), match.group("name")
        line_no = stripped_text.count("\n", 0, match.start()) + 1
        if line_allows(lines, line_no - 1, "metric-naming"):
            continue
        problem = None
        if not METRIC_NAME_RE.match(name):
            problem = "must match praxi_[a-z0-9_]+"
        elif kind == "counter" and not name.endswith("_total"):
            problem = "counters must end in _total"
        elif kind == "histogram" and not name.endswith(HISTOGRAM_SUFFIXES):
            problem = "histograms must end in _seconds, _bytes, or _count"
        elif kind == "gauge" and name.endswith("_total"):
            problem = "_total marks a counter; gauges carry no suffix"
        if problem:
            found.append(Violation(
                rel, line_no, "metric-naming",
                f'instrument "{name}" breaks the catalog scheme ({problem}; '
                "see docs/OBSERVABILITY.md)"))

    for match in CATCH_BLOCK_RE.finditer(stripped_text):
        line_no = stripped_text.count("\n", 0, match.start()) + 1
        if line_allows(lines, line_no - 1, "data-plane-catch"):
            continue
        # Skip the (exception declaration) parens, then brace-match the
        # handler body.
        depth, i = 1, match.end()
        while i < len(stripped_text) and depth:
            if stripped_text[i] == "(":
                depth += 1
            elif stripped_text[i] == ")":
                depth -= 1
            i += 1
        while i < len(stripped_text) and stripped_text[i] in " \t\r\n":
            i += 1
        if i >= len(stripped_text) or stripped_text[i] != "{":
            continue
        depth, j = 1, i + 1
        while j < len(stripped_text) and depth:
            if stripped_text[j] == "{":
                depth += 1
            elif stripped_text[j] == "}":
                depth -= 1
            j += 1
        body = stripped_text[i:j]
        if not CATCH_HANDLES_RE.search(body):
            found.append(Violation(
                rel, line_no, "data-plane-catch",
                "catch block swallows the error without recording it; "
                "record-and-continue (increment an instrument), report, or "
                "rethrow (or annotate: praxi-lint: allow(data-plane-catch))"))

    # missing-require-end: every from_binary/from_wire definition must drain
    # the reader, directly or through a same-file helper.
    if path.suffix == ".cpp" and DECODER_RE.search(text):
        bodies = list(function_bodies(text))
        helper_ok = {name.split("::")[-1]
                     for name, _, body in bodies if "require_end" in body}

        def drains(body: str) -> bool:
            if "require_end" in body:
                return True
            return any(re.search(r"\b%s\s*\(" % re.escape(helper), body)
                       for helper in helper_ok)

        for name, start, body in bodies:
            if not re.search(r"::(?:from_binary|from_wire)$", name):
                continue
            if not drains(body):
                line_no = text.count("\n", 0, start) + 1
                if not line_allows(lines, line_no - 1, "missing-require-end"):
                    found.append(Violation(
                        rel, line_no, "missing-require-end",
                        f"decoder {name}() never calls require_end(); "
                        "trailing bytes would be silently accepted"))
    return found


def collect_magic_tags(root: pathlib.Path):
    """(rel_path, line, tag) for every tagged magic constant under src/."""
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        for i, line in enumerate(path.read_text(errors="replace").splitlines()):
            match = MAGIC_RE.search(line)
            if match:
                yield path.relative_to(root).as_posix(), i + 1, \
                    match.group("tag")


def lint(root: pathlib.Path) -> list[Violation]:
    violations: list[Violation] = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix in SOURCE_SUFFIXES:
            violations.extend(check_file(root, path))

    doc = root / "docs" / "PERSISTENCE.md"
    doc_text = doc.read_text(errors="replace") if doc.exists() else ""
    for rel, line, tag in collect_magic_tags(root):
        if tag not in doc_text:
            violations.append(Violation(
                rel, line, "undocumented-magic",
                f'envelope magic "{tag}" is not documented in '
                "docs/PERSISTENCE.md"))
    return violations


# ---------------------------------------------------------------------------
# Self-test: seed one violation per rule, assert each fires — so a refactor
# of the regexes above cannot silently lobotomize a rule.
# ---------------------------------------------------------------------------

SELFTEST_CLEAN = """\
#include <ostream>
#include "common/serialize.hpp"
namespace praxi {
constexpr std::uint32_t kGoodMagic = 0x50474f31U;  // "PGO1"
Thing Thing::from_binary(std::string_view bytes) {
  BinaryReader r(bytes);
  r.require_end("thing");
  return Thing{};
}
void save(const std::string& path, std::string_view bytes) {
  write_file_atomic(path, bytes);
}
void debug_dump(const std::string& path) {
  write_file(path, "x");  // praxi-lint: allow(raw-write: scratch output)
}
void load(std::ostream& err) {
  try {
  } catch (const SerializeError& e) {
    err << "load failed: " << e.what() << "\\n";
  }
}
void instruments() {
  obs::MetricsRegistry::global().counter(
      "praxi_selftest_loads_total", "well-named, multi-line registration");
  obs::MetricsRegistry::global().gauge("praxi_selftest_depth", "no suffix");
  obs::MetricsRegistry::global().histogram(
      "praxi_selftest_load_seconds", "unit suffix", obs::latency_buckets());
}
void forensics() {
  try {
  } catch (...) {  // praxi-lint: allow(data-plane-catch: best effort)
  }
}
void wrapper_internals() {
  // praxi-lint: allow(naked-mutex: the wrapper itself)
  static std::mutex raw;
  (void)raw;
}
}  // namespace praxi
"""

SELFTEST_VIOLATIONS = {
    "raw-write": "void f() { write_file(path, bytes); }\n",
    "missing-require-end": (
        "Thing Thing::from_binary(std::string_view bytes) {\n"
        "  BinaryReader r(bytes);\n"
        "  return Thing{};\n"
        "}\n"),
    "undocumented-magic": (
        'constexpr std::uint32_t kEvilMagic = 0x45564c31U;  // "EVL1"\n'),
    "iostream-in-library": "#include <iostream>\n",
    "naked-rand": "int f() { return rand(); }\n",
    "catch-by-value": (
        "void f() {\n"
        "  try {\n"
        "  } catch (SerializeError e) {\n"
        "    throw;\n"
        "  }\n"
        "}\n"),
    "metric-naming": (
        "void f() {\n"
        "  obs::MetricsRegistry::global().counter(\n"
        '      "praxi_bad_things", "counter missing its _total suffix");\n'
        "}\n"),
    "data-plane-catch": (
        "void f() {\n"
        "  try {\n"
        "    g();\n"
        "  } catch (const SerializeError&) {\n"
        "  }\n"
        "}\n"),
    "blocking-socket": (
        "int f(int fd) { return ::connect(fd, nullptr, 0); }\n"),
    "naked-mutex": (
        "#include <mutex>\n"
        "void f() { std::mutex m; (void)m; }\n"),
    "weight-table-mutation": (
        "void f(praxi::ml::detail::WeightTable& table) {\n"
        "  table.update(x, 0, 0.1f, 0.0f);\n"
        "}\n"),
    "ad-hoc-sharding": (
        "std::uint32_t owner(std::uint64_t hash, std::size_t num_shards) {\n"
        "  return static_cast<std::uint32_t>(hash % num_shards);\n"
        "}\n"),
}

# Rules scoped to a subtree need their seed planted there; everything else
# lands directly under src/.
SELFTEST_SEED_DIRS = {
    "columbus-hot-alloc": "src/columbus",
}
SELFTEST_VIOLATIONS["columbus-hot-alloc"] = (
    "#include <map>\n"
    "struct Node { std::map<char, Node*> children; };\n")

# A columbus file whose only allocation primitive carries the allow
# annotation must stay clean — this pins the escape hatch open.
SELFTEST_COLUMBUS_CLEAN = """\
namespace praxi::columbus {
void legacy_shim(const Tokenizer& tokenizer, std::string_view path) {
  // praxi-lint: allow(columbus-hot-alloc: equivalence-test baseline)
  (void)tokenizer.tokenize(path);
}
}  // namespace praxi::columbus
"""


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="praxi_lint_selftest") as tmp:
        root = pathlib.Path(tmp)
        (root / "src").mkdir()
        (root / "docs").mkdir()
        (root / "docs" / "PERSISTENCE.md").write_text(
            'Documented magics: "PGO1".\n')

        (root / "src" / "clean.cpp").write_text(SELFTEST_CLEAN)
        (root / "src" / "columbus").mkdir()
        (root / "src" / "columbus" / "clean_columbus.cpp").write_text(
            SELFTEST_COLUMBUS_CLEAN)
        clean_hits = lint(root)
        if clean_hits:
            failures.append(f"clean tree reported: {list(map(str, clean_hits))}")

        for rule, snippet in SELFTEST_VIOLATIONS.items():
            seed_dir = root / SELFTEST_SEED_DIRS.get(rule, "src")
            seed_dir.mkdir(parents=True, exist_ok=True)
            seeded = seed_dir / f"seed_{rule.replace('-', '_')}.cpp"
            seeded.write_text(snippet)
            fired = {v.rule for v in lint(root)}
            seeded.unlink()
            if rule not in fired:
                failures.append(f"rule {rule} did not fire on seeded "
                                f"violation {snippet!r}")

    if failures:
        for failure in failures:
            print("SELF-TEST FAIL:", failure, file=sys.stderr)
        return 1
    print(f"self-test ok: all {len(SELFTEST_VIOLATIONS)} rules fire, "
          "clean tree stays clean")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent)
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    violations = lint(args.root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"praxi_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("praxi_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
