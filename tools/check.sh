#!/usr/bin/env bash
# Static-analysis gate entry point (docs/STATIC_ANALYSIS.md).
#
#   tools/check.sh             run every lane below in order, stopping at
#                              the first failure
#   tools/check.sh --all       run every lane, KEEP GOING past failures,
#                              exit non-zero if any lane failed
#   tools/check.sh --tier1     tier-1 build + full ctest (includes fuzz
#                              smoke + praxi_lint)
#   tools/check.sh --werror    strict-warnings build (PRAXI_WERROR=ON)
#   tools/check.sh --tsa       clang Thread Safety Analysis as errors
#                              (PRAXI_TSA=ON) + the negative-compile check
#                              that proves the analysis actually rejects a
#                              guarded-field access without its lock
#                              (docs/CONCURRENCY.md; needs clang)
#   tools/check.sh --tidy      clang-tidy over the compile database
#   tools/check.sh --lint      tools/praxi_lint.py + its self-test
#   tools/check.sh --fuzz      fuzz smoke tests only (already in tier-1)
#   tools/check.sh --bench-smoke  build + one tiny pass of the Columbus
#                              micro-benches (build-rot canary, not a
#                              measurement)
#   tools/check.sh --format    verify formatting (no rewrite)
#   tools/check.sh --tsan-obs  ThreadSanitizer pass over the metrics
#                              registry's concurrency tests (needs clang)
#   tools/check.sh --tsan-net  ThreadSanitizer pass over the socket
#                              transport's concurrency tests (needs clang)
#   tools/check.sh --tsan-wal  ThreadSanitizer pass over the WAL and the
#                              server restart/ingest concurrency tests
#                              (needs clang)
#   tools/check.sh --tsan-ml   ThreadSanitizer pass over the serve-while-
#                              learn snapshot tests: predict threads hammer
#                              snapshot() while a trainer streams SGD and
#                              publishes epochs (needs clang)
#   tools/check.sh --tsan-cluster  ThreadSanitizer pass over the sharded
#                              cluster tests: concurrent agent senders
#                              against the ShardRouter's per-shard worker
#                              threads and round barrier (needs clang)
#
# Lane flags can be combined (e.g. `--lint --tsa`). Every run ends with a
# summary table: which lanes ran, which were skipped, which failed.
#
# Lanes that need a tool the machine lacks (clang, clang-tidy,
# clang-format) are SKIPPED with a notice, not failed — the configs are
# checked in so any machine that has the tools enforces them. A lane
# signals the skip by exiting its subshell with 77 (the conventional
# automake SKIP code); any other non-zero exit is a failure.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$PWD
JOBS=$(nproc 2>/dev/null || echo 4)

note()  { printf '\n== %s\n' "$*"; }
# Called from inside a lane: prints the notice and exits the lane's
# subshell with the SKIP code so the driver records "skipped", not "ran".
skip()  { printf '\n== SKIPPED: %s\n' "$*"; exit 77; }

run_tier1() {
  note "tier-1: build + ctest (unit, persistence, fuzz smoke, praxi_lint)"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_werror() {
  note "strict warnings: PRAXI_WERROR=ON (-Wconversion -Wsign-conversion \
-Wshadow -Wnon-virtual-dtor -Wold-style-cast -Werror; +-Wthread-safety \
under clang)"
  cmake -B build-werror -S . -DPRAXI_WERROR=ON >/dev/null
  cmake --build build-werror -j "$JOBS"
}

run_tsa() {
  # Compile-time concurrency proofs (docs/CONCURRENCY.md): every lock in
  # src/ is an annotated common::Mutex, so clang's Thread Safety Analysis
  # can verify — at compile time — that guarded fields are only touched
  # with their lock held. gcc parses the annotations as unknown attributes
  # and proves nothing, so this lane insists on clang and skips otherwise
  # (the lock-rank runtime checker still runs everywhere).
  if ! command -v clang++ >/dev/null; then
    skip "clang++ not installed (tsa lane: -Werror=thread-safety needs \
clang's Thread Safety Analysis; the configs are checked in)"
  fi
  note "thread safety analysis: PRAXI_TSA=ON (-Werror=thread-safety)"
  cmake -B build-tsa -S . -DPRAXI_TSA=ON \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsa -j "$JOBS"

  # Negative-compile check: a guarded-field access without the lock MUST
  # be rejected, or the lane is proving nothing. tsa_negcompile.cpp reads
  # a PRAXI_GUARDED_BY field with no lock held; compiling the same file
  # with -DPRAXI_NEGCOMPILE_LOCKED takes the lock first and must succeed —
  # the positive control that guards against the violation "failing" due
  # to an unrelated compile error.
  note "tsa negative-compile: unguarded access must fail, locked control \
must pass"
  local negsrc=tests/tsa_negcompile.cpp
  local flags=(-std=c++20 -fsyntax-only -Isrc
               -Wthread-safety -Werror=thread-safety)
  if clang++ "${flags[@]}" "$negsrc" 2>/dev/null; then
    echo "ERROR: $negsrc compiled without holding the lock — Thread" \
         "Safety Analysis is not enforcing PRAXI_GUARDED_BY" >&2
    exit 1
  fi
  clang++ "${flags[@]}" -DPRAXI_NEGCOMPILE_LOCKED "$negsrc"
  echo "negative-compile check ok: violation rejected, control accepted"
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null; then
    skip "clang-tidy not installed (config: .clang-tidy)"
  fi
  note "clang-tidy over the compile database"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  if command -v run-clang-tidy >/dev/null; then
    run-clang-tidy -p build -quiet "$ROOT/src/.*" "$ROOT/fuzz/.*"
  else
    find src fuzz -name '*.cpp' -print0 |
      xargs -0 -n 1 -P "$JOBS" clang-tidy -p build --quiet
  fi
}

run_lint() {
  note "project invariants: tools/praxi_lint.py"
  python3 tools/praxi_lint.py --self-test
  python3 tools/praxi_lint.py --root "$ROOT"
}

run_fuzz() {
  note "fuzz smoke: bounded run of every harness over its seed corpus"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target \
    fuzz_prx1 fuzz_poa1 fuzz_pcs2 fuzz_pcs1 fuzz_ptg1 fuzz_pts1 \
    fuzz_pds1 fuzz_pw2v fuzz_psv1 fuzz_prpt fuzz_wal fuzz_frame \
    fuzz_tokenizer fuzz_columbus_arena
  ctest --test-dir build -R '^fuzz_smoke_' --output-on-failure -j "$JOBS"
}

run_bench_smoke() {
  # One tiny pass of the component micro-benches: proves the bench binary
  # still builds and runs (numbers from a smoke pass are noise — use a
  # dedicated quiet machine for real measurements).
  note "bench smoke: micro_components (minimal iterations, not a measurement)"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target micro_components load_cluster
  ./build/bench/micro_components --benchmark_min_time=0.01 \
    --benchmark_filter='BM_(FrequencyTrieInsert|ArenaTrieInsert|Tokenize|TokenizeViews|ColumbusExtract|ColumbusExtractLegacy)$'
  # Tiny cluster load-generator pass: proves the sharded socket path still
  # builds, routes, settles, and emits its JSON (docs/CLUSTER.md).
  ./build/bench/load_cluster --smoke
}

run_tsan_obs() {
  # The metrics registry promises lock-free concurrent updates against
  # concurrent collect()/render; obs_test hammers that promise with racing
  # writers, a registering thread, and a reading thread. TSan proves the
  # absence of data races, not just the absence of wrong answers. GCC's
  # TSan runtime is flaky with std::atomic<double> CAS loops on some
  # distros, so this lane insists on clang and skips otherwise.
  if ! command -v clang++ >/dev/null; then
    skip "clang++ not installed (tsan-obs lane; gcc tier-1 still runs obs_test)"
  fi
  note "ThreadSanitizer: obs_test (metrics registry concurrency)"
  cmake -B build-tsan-obs -S . -DPRAXI_SANITIZE=thread \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsan-obs -j "$JOBS" --target obs_test
  ./build-tsan-obs/tests/obs_test
}

run_tsan_net() {
  # The socket server runs one reader thread per connection plus an accept
  # loop, all draining into one bounded queue while clients hammer it from
  # their own threads; net_test's end-to-end case is exactly the workload
  # where a data race would hide. Same clang-only policy as tsan-obs.
  if ! command -v clang++ >/dev/null; then
    skip "clang++ not installed (tsan-net lane; gcc tier-1 still runs net_test)"
  fi
  note "ThreadSanitizer: net_test (socket transport concurrency)"
  cmake -B build-tsan-net -S . -DPRAXI_SANITIZE=thread \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsan-net -j "$JOBS" --target net_test
  ./build-tsan-net/tests/net_test
}

run_tsan_wal() {
  # The WAL settle path takes the deepest lock nesting in the tree —
  # server state -> tagset store -> pool -> registry -> WAL
  # (docs/CONCURRENCY.md) — and transport_test's FaultMatrixTest drives it
  # through restarts and at-least-once redelivery, where a race would
  # corrupt the exactly-once guarantee silently. wal_test covers the log
  # itself. Same clang-only policy as the other tsan lanes.
  if ! command -v clang++ >/dev/null; then
    skip "clang++ not installed (tsan-wal lane; gcc tier-1 still runs \
wal_test + transport_test)"
  fi
  note "ThreadSanitizer: wal_test + transport_test FaultMatrix (WAL and \
restart/ingest concurrency)"
  cmake -B build-tsan-wal -S . -DPRAXI_SANITIZE=thread \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsan-wal -j "$JOBS" --target wal_test transport_test
  ./build-tsan-wal/tests/wal_test
  ./build-tsan-wal/tests/transport_test --gtest_filter='FaultMatrixTest.*'
}

run_tsan_ml() {
  # The serve-while-learn contract (docs/API.md): predict threads read
  # frozen ModelSnapshots through one atomic shared_ptr while the trainer
  # mutates the live weights and publishes new epochs — zero locks on the
  # hot path, so TSan is the only tool that can prove the absence of a
  # data race there (snapshot_test's concurrency case only proves the
  # absence of wrong answers). Same clang-only policy as the other tsan
  # lanes.
  if ! command -v clang++ >/dev/null; then
    skip "clang++ not installed (tsan-ml lane; gcc tier-1 still runs \
snapshot_test)"
  fi
  note "ThreadSanitizer: snapshot_test (RCU snapshot publish/predict \
concurrency)"
  cmake -B build-tsan-ml -S . -DPRAXI_SANITIZE=thread \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsan-ml -j "$JOBS" --target snapshot_test
  ./build-tsan-ml/tests/snapshot_test
}

run_tsan_cluster() {
  # The ShardRouter runs one worker thread per shard against a round
  # barrier while agent threads push through send(); the sweep then moves
  # settled frames back to the router thread. A race anywhere in that
  # hand-off would silently break the cluster's ack-after-settle contract,
  # so TSan proves its absence over the concurrent-senders and
  # restart-mid-stream cases. Same clang-only policy as the other tsan
  # lanes.
  if ! command -v clang++ >/dev/null; then
    skip "clang++ not installed (tsan-cluster lane; gcc tier-1 still runs \
cluster_test)"
  fi
  note "ThreadSanitizer: cluster_test (shard router round/worker \
concurrency)"
  cmake -B build-tsan-cluster -S . -DPRAXI_SANITIZE=thread \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsan-cluster -j "$JOBS" --target cluster_test
  ./build-tsan-cluster/tests/cluster_test --gtest_filter='ShardRouterTest.*'
}

run_format() {
  if ! command -v clang-format >/dev/null; then
    skip "clang-format not installed (config: .clang-format)"
  fi
  note "format check (dry run, no rewrite)"
  find src fuzz tests bench examples tools -name '*.cpp' -o -name '*.hpp' |
    xargs clang-format --dry-run --Werror
}

# ---------------------------------------------------------------------------
# Lane driver: each lane runs in its own subshell so one lane's failure (or
# skip via exit 77) never tears down the driver; results accumulate into the
# end-of-run summary table.

ALL_LANES=(tier1 werror tsa tidy lint bench-smoke tsan-obs tsan-net
           tsan-wal tsan-ml tsan-cluster format)
LANES_RAN=()
LANES_SKIPPED=()
LANES_FAILED=()
KEEP_GOING=0

summary() {
  printf '\n== lane summary (%d ran, %d skipped, %d failed)\n' \
    "${#LANES_RAN[@]}" "${#LANES_SKIPPED[@]}" "${#LANES_FAILED[@]}"
  local name
  for name in "${LANES_RAN[@]}";     do printf '   ran      %s\n' "$name"; done
  for name in "${LANES_SKIPPED[@]}"; do printf '   skipped  %s\n' "$name"; done
  for name in "${LANES_FAILED[@]}";  do printf '   FAILED   %s\n' "$name"; done
}

run_lane() {
  local name=$1 fn status=0
  fn="run_${name//-/_}"
  ( set -euo pipefail; "$fn" ) || status=$?
  if [ "$status" -eq 0 ]; then
    LANES_RAN+=("$name")
  elif [ "$status" -eq 77 ]; then
    LANES_SKIPPED+=("$name")
  else
    LANES_FAILED+=("$name")
    printf '\n== FAILED: %s lane (exit %d)\n' "$name" "$status"
    if [ "$KEEP_GOING" -ne 1 ]; then
      summary
      exit "$status"
    fi
  fi
}

usage() {
  echo "usage: tools/check.sh [--all] [--tier1|--werror|--tsa|--tidy|" \
       "--lint|--fuzz|--bench-smoke|--format|--tsan-obs|--tsan-net|" \
       "--tsan-wal|--tsan-ml|--tsan-cluster]..." >&2
}

SELECTED=()
for arg in "$@"; do
  case "$arg" in
    --all) KEEP_GOING=1 ;;
    --tier1|--werror|--tsa|--tidy|--lint|--fuzz|--bench-smoke|--format|--tsan-obs|--tsan-net|--tsan-wal|--tsan-ml|--tsan-cluster)
      SELECTED+=("${arg#--}") ;;
    *) usage; exit 2 ;;
  esac
done
if [ "${#SELECTED[@]}" -eq 0 ]; then
  SELECTED=("${ALL_LANES[@]}")
fi

for name in "${SELECTED[@]}"; do
  run_lane "$name"
done

summary
if [ "${#LANES_FAILED[@]}" -gt 0 ]; then
  printf '\ncheck.sh: %d lane(s) FAILED\n' "${#LANES_FAILED[@]}"
  exit 1
fi
printf '\ncheck.sh: all requested lanes green\n'
