#!/usr/bin/env bash
# Static-analysis gate entry point (docs/STATIC_ANALYSIS.md).
#
#   tools/check.sh             run every lane below, in order
#   tools/check.sh --tier1     tier-1 build + full ctest (includes fuzz
#                              smoke + praxi_lint)
#   tools/check.sh --werror    strict-warnings build (PRAXI_WERROR=ON)
#   tools/check.sh --tidy      clang-tidy over the compile database
#   tools/check.sh --lint      tools/praxi_lint.py + its self-test
#   tools/check.sh --fuzz      fuzz smoke tests only (already in tier-1)
#   tools/check.sh --bench-smoke  build + one tiny pass of the Columbus
#                              micro-benches (build-rot canary, not a
#                              measurement)
#   tools/check.sh --format    verify formatting (no rewrite)
#   tools/check.sh --tsan-obs  ThreadSanitizer pass over the metrics
#                              registry's concurrency tests (needs clang)
#   tools/check.sh --tsan-net  ThreadSanitizer pass over the socket
#                              transport's concurrency tests (needs clang)
#
# Lanes that need a tool the machine lacks (clang-tidy, clang-format) are
# SKIPPED with a notice, not failed — the configs are checked in so any
# machine that has the tools enforces them. Everything else failing fails
# the script (set -e).
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$PWD
JOBS=$(nproc 2>/dev/null || echo 4)

note()  { printf '\n== %s\n' "$*"; }
skip()  { printf '\n== SKIPPED: %s\n' "$*"; }

run_tier1() {
  note "tier-1: build + ctest (unit, persistence, fuzz smoke, praxi_lint)"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_werror() {
  note "strict warnings: PRAXI_WERROR=ON (-Wconversion -Wsign-conversion \
-Wshadow -Wnon-virtual-dtor -Wold-style-cast -Werror)"
  cmake -B build-werror -S . -DPRAXI_WERROR=ON >/dev/null
  cmake --build build-werror -j "$JOBS"
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null; then
    skip "clang-tidy not installed (config: .clang-tidy)"
    return 0
  fi
  note "clang-tidy over the compile database"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  if command -v run-clang-tidy >/dev/null; then
    run-clang-tidy -p build -quiet "$ROOT/src/.*" "$ROOT/fuzz/.*"
  else
    find src fuzz -name '*.cpp' -print0 |
      xargs -0 -n 1 -P "$JOBS" clang-tidy -p build --quiet
  fi
}

run_lint() {
  note "project invariants: tools/praxi_lint.py"
  python3 tools/praxi_lint.py --self-test
  python3 tools/praxi_lint.py --root "$ROOT"
}

run_fuzz() {
  note "fuzz smoke: bounded run of every harness over its seed corpus"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target \
    fuzz_prx1 fuzz_poa1 fuzz_pcs2 fuzz_pcs1 fuzz_ptg1 fuzz_pts1 \
    fuzz_pds1 fuzz_pw2v fuzz_psv1 fuzz_prpt fuzz_wal fuzz_frame \
    fuzz_tokenizer fuzz_columbus_arena
  ctest --test-dir build -R '^fuzz_smoke_' --output-on-failure -j "$JOBS"
}

run_bench_smoke() {
  # One tiny pass of the component micro-benches: proves the bench binary
  # still builds and runs (numbers from a smoke pass are noise — use a
  # dedicated quiet machine for real measurements).
  note "bench smoke: micro_components (minimal iterations, not a measurement)"
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS" --target micro_components
  ./build/bench/micro_components --benchmark_min_time=0.01 \
    --benchmark_filter='BM_(FrequencyTrieInsert|ArenaTrieInsert|Tokenize|TokenizeViews|ColumbusExtract|ColumbusExtractLegacy)$'
}

run_tsan_obs() {
  # The metrics registry promises lock-free concurrent updates against
  # concurrent collect()/render; obs_test hammers that promise with racing
  # writers, a registering thread, and a reading thread. TSan proves the
  # absence of data races, not just the absence of wrong answers. GCC's
  # TSan runtime is flaky with std::atomic<double> CAS loops on some
  # distros, so this lane insists on clang and skips otherwise.
  if ! command -v clang++ >/dev/null; then
    skip "clang++ not installed (tsan-obs lane; gcc tier-1 still runs obs_test)"
    return 0
  fi
  note "ThreadSanitizer: obs_test (metrics registry concurrency)"
  cmake -B build-tsan-obs -S . -DPRAXI_SANITIZE=thread \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsan-obs -j "$JOBS" --target obs_test
  ./build-tsan-obs/tests/obs_test
}

run_tsan_net() {
  # The socket server runs one reader thread per connection plus an accept
  # loop, all draining into one bounded queue while clients hammer it from
  # their own threads; net_test's end-to-end case is exactly the workload
  # where a data race would hide. Same clang-only policy as tsan-obs.
  if ! command -v clang++ >/dev/null; then
    skip "clang++ not installed (tsan-net lane; gcc tier-1 still runs net_test)"
    return 0
  fi
  note "ThreadSanitizer: net_test (socket transport concurrency)"
  cmake -B build-tsan-net -S . -DPRAXI_SANITIZE=thread \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang >/dev/null
  cmake --build build-tsan-net -j "$JOBS" --target net_test
  ./build-tsan-net/tests/net_test
}

run_format() {
  if ! command -v clang-format >/dev/null; then
    skip "clang-format not installed (config: .clang-format)"
    return 0
  fi
  note "format check (dry run, no rewrite)"
  find src fuzz tests bench examples tools -name '*.cpp' -o -name '*.hpp' |
    xargs clang-format --dry-run --Werror
}

case "${1:-all}" in
  --tier1)  run_tier1 ;;
  --werror) run_werror ;;
  --tidy)   run_tidy ;;
  --lint)   run_lint ;;
  --fuzz)   run_fuzz ;;
  --bench-smoke) run_bench_smoke ;;
  --format) run_format ;;
  --tsan-obs) run_tsan_obs ;;
  --tsan-net) run_tsan_net ;;
  all)      run_tier1; run_werror; run_tidy; run_lint; run_bench_smoke; run_tsan_obs; run_tsan_net; run_format ;;
  *) echo "usage: tools/check.sh [--tier1|--werror|--tidy|--lint|--fuzz|--bench-smoke|--format|--tsan-obs|--tsan-net]" >&2
     exit 2 ;;
esac

printf '\ncheck.sh: all requested lanes green\n'
