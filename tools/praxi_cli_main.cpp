// Entry point for the praxi-cli binary; all logic lives in praxi::cli::run
// so it can be unit-tested without process spawning.
#include <iostream>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  return praxi::cli::run_main(argc, argv, std::cout, std::cerr);
}
