// The incremental-corpus workflow the paper motivates (§V-D, §VI): a
// software repository gains new packages every "day"; Praxi absorbs them
// with cheap online updates, while a full retrain (DeltaSherlock-style) gets
// costlier as the corpus grows. After several incremental days the operator
// runs the recommended weekly full retrain to recover any drift.
//
// Run:  ./incremental_corpus [days]
#include <cstdlib>
#include <iostream>

#include "common/stopwatch.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"
#include "pkg/dataset.hpp"

int main(int argc, char** argv) {
  using namespace praxi;

  const int days = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::size_t apps_per_day = 8;
  const std::size_t train_per_app = 6;
  const std::size_t test_per_app = 3;

  const auto catalog = pkg::Catalog::standard(42);
  const auto all_apps = catalog.application_names();
  const std::size_t max_apps =
      std::min(all_apps.size(), apps_per_day * std::size_t(days));

  pkg::DatasetBuilder builder(catalog, 7);
  pkg::CollectOptions options;
  options.samples_per_app = train_per_app + test_per_app;
  options.app_filter.assign(
      all_apps.begin(),
      all_apps.begin() + static_cast<std::ptrdiff_t>(max_apps));
  const pkg::Dataset dataset = builder.collect_dirty(options);

  std::map<std::string, std::vector<const fs::Changeset*>> by_app;
  for (const auto& cs : dataset.changesets) {
    by_app[cs.labels().front()].push_back(&cs);
  }

  core::Praxi online_model;  // updated incrementally, never reset
  std::vector<const fs::Changeset*> cumulative_train, cumulative_test;
  eval::TextTable table({"day", "corpus apps", "update time", "full-retrain time",
                         "online F1", "retrain F1"});

  for (int day = 0; day < days; ++day) {
    const std::size_t begin = static_cast<std::size_t>(day) * apps_per_day;
    if (begin >= max_apps) break;
    const std::size_t end = std::min(begin + apps_per_day, max_apps);

    // Today's new packages arrive.
    std::vector<const fs::Changeset*> today;
    for (std::size_t a = begin; a < end; ++a) {
      const auto& samples = by_app.at(all_apps[a]);
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (i < test_per_app) {
          cumulative_test.push_back(samples[i]);
        } else {
          today.push_back(samples[i]);
        }
      }
    }
    cumulative_train.insert(cumulative_train.end(), today.begin(),
                            today.end());

    // Online update: only today's samples touch the model.
    Stopwatch online_timer;
    online_model.train_changesets(today);
    const double online_s = online_timer.elapsed_s();

    // The alternative: retrain from scratch on everything.
    core::Praxi scratch_model;
    Stopwatch scratch_timer;
    scratch_model.train_changesets(cumulative_train);
    const double scratch_s = scratch_timer.elapsed_s();

    auto f1_of = [&](const core::Praxi& model) {
      std::vector<std::vector<std::string>> truths, predictions;
      for (const fs::Changeset* cs : cumulative_test) {
        truths.push_back(cs->labels());
        predictions.push_back(model.snapshot()->predict(*cs));
      }
      return eval::evaluate(truths, predictions).weighted_f1();
    };

    table.add_row({"day " + std::to_string(day + 1), std::to_string(end),
                   eval::fmt_double(online_s * 1e3) + " ms",
                   eval::fmt_double(scratch_s * 1e3) + " ms",
                   eval::fmt_percent(f1_of(online_model)),
                   eval::fmt_percent(f1_of(scratch_model))});
  }

  table.print(std::cout);
  std::cout << "\nThe online column is the paper's point: each day costs the "
               "same small update,\nwhile full retraining grows with the "
               "corpus. The paper recommends an occasional\nfull retrain "
               "(e.g. weekly) to claw back the small accuracy drift.\n";
  return 0;
}
