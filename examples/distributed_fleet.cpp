// Distributed discovery: the client/server deployment of paper §II-C.
//
// A fleet of simulated instances each runs a tiny CollectionAgent that ships
// observation windows over the message bus; the central DiscoveryServer
// classifies them, maintains a live fleet inventory, and — when an unknown
// package appears — learns it ONLINE from operator-confirmed feedback, so
// the very next sighting anywhere in the fleet is identified. No retraining,
// no dictionary regeneration: the §V-D incremental loop in deployment form.
//
// Run:  ./distributed_fleet [instances] [hours]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/strings.hpp"
#include "eval/harness.hpp"
#include "pkg/dataset.hpp"
#include "pkg/installer.hpp"
#include "pkg/noise.hpp"
#include "service/agent.hpp"
#include "service/server.hpp"

int main(int argc, char** argv) {
  using namespace praxi;

  const int fleet_size = argc > 1 ? std::atoi(argv[1]) : 6;
  const double hours = argc > 2 ? std::strtod(argv[2], nullptr) : 1.0;

  // The server's model knows 16 packages; one more exists in the wild.
  const auto known = pkg::Catalog::subset(42, 16, 2);
  const auto world = pkg::Catalog::subset(42, 17, 2);
  const std::string newcomer = world.repository_names()[16];

  pkg::DatasetBuilder builder(known, 7);
  pkg::CollectOptions options;
  options.samples_per_app = 6;
  const pkg::Dataset corpus = builder.collect_dirty(options);
  core::Praxi model;
  model.train_changesets(eval::pointers(corpus));

  service::MessageBus bus;
  service::DiscoveryServer server(std::move(model), {});
  std::cout << "server online: " << server.model().labels().size()
            << " known applications (\"" << newcomer
            << "\" is not one of them)\n\n";

  // ---- Fleet -----------------------------------------------------------------
  struct Instance {
    fs::SimClockPtr clock;
    std::unique_ptr<fs::InMemoryFilesystem> filesystem;
    std::unique_ptr<pkg::Installer> installer;
    std::unique_ptr<pkg::NoiseMix> noise;
    std::unique_ptr<service::CollectionAgent> agent;
    std::vector<std::string> installed;
  };
  std::vector<Instance> fleet;
  Rng rng(7777);
  for (int v = 0; v < fleet_size; ++v) {
    Instance instance;
    instance.clock = fs::make_clock();
    instance.filesystem =
        std::make_unique<fs::InMemoryFilesystem>(instance.clock);
    pkg::provision_base_image(*instance.filesystem);
    instance.installer = std::make_unique<pkg::Installer>(
        *instance.filesystem, world, Rng(rng.next()));
    instance.noise =
        std::make_unique<pkg::NoiseMix>(pkg::NoiseMix::baseline(Rng(rng.next())));
    instance.agent = std::make_unique<service::CollectionAgent>(
        "vm-" + std::to_string(v), *instance.filesystem, bus);
    fleet.push_back(std::move(instance));
  }

  const auto apps = world.application_names();
  const double total_s = hours * 3600.0;
  for (double t = 0.0; t < total_s; t += 1.0) {
    for (auto& instance : fleet) {
      instance.clock->advance_s(1.0);
      instance.noise->tick(*instance.filesystem, 1.0);
      if (rng.chance(0.0006) &&
          instance.installed.size() + 1 < apps.size()) {
        std::string app;
        do {
          app = rng.chance(0.25) ? newcomer : apps[rng.below(apps.size())];
        } while (std::find(instance.installed.begin(),
                           instance.installed.end(),
                           app) != instance.installed.end());
        instance.installer->install(app);
        instance.installed.push_back(app);
      }
      instance.agent->poll();
    }

    for (const auto& discovery : server.process(bus)) {
      std::cout << "[t+" << int(t) << "s] " << discovery.agent_id << ": "
                << discovery.record_count << " changes -> "
                << join(discovery.applications, " ") << "\n";
    }
  }

  // The operator notices the unknown package and teaches the server online.
  std::cout << "\noperator feedback: teaching \"" << newcomer
            << "\" from 6 confirmed changesets (online, no retrain)\n";
  for (std::uint64_t s = 0; s < 6; ++s) {
    auto clock = fs::make_clock();
    fs::InMemoryFilesystem sandbox(clock);
    pkg::provision_base_image(sandbox);
    pkg::Installer installer(sandbox, world, Rng(s));
    fs::ChangesetRecorder recorder(sandbox);
    installer.install(newcomer);
    fs::Changeset cs = recorder.eject({newcomer});
    server.learn_feedback(cs);
  }
  std::cout << "server now knows " << server.model().labels().size()
            << " applications\n";

  // Next sighting anywhere in the fleet is identified.
  auto clock = fs::make_clock();
  fs::InMemoryFilesystem instance(clock);
  pkg::provision_base_image(instance);
  pkg::Installer installer(instance, world, Rng(31337));
  service::CollectionAgent agent("vm-new", instance, bus);
  installer.install(newcomer);
  clock->advance_s(400.0);
  agent.poll();
  for (const auto& discovery : server.process(bus)) {
    std::cout << "post-feedback sighting on " << discovery.agent_id << " -> "
              << join(discovery.applications, " ") << "  (truth: " << newcomer
              << ")\n";
  }

  // ---- Inventory --------------------------------------------------------------
  std::cout << "\nfleet inventory (" << server.processed()
            << " windows processed, "
            << format_bytes(bus.stats().sent_bytes) << " shipped, tagset store "
            << format_bytes(server.store().total_bytes()) << "):\n";
  for (const auto& [agent_id, discovered] : server.inventory()) {
    std::cout << "  " << agent_id << ":";
    for (const auto& app : discovered) std::cout << " " << app;
    std::cout << "\n";
  }
  return 0;
}
