// Quickstart: the complete Praxi loop on a simulated cloud instance.
//
//   1. build the synthetic package catalog and collect a small labeled
//      corpus of dirty changesets (installations observed under noise);
//   2. train a Praxi model (Columbus tags -> hashed online learner);
//   3. install a "mystery" package on a fresh instance, record the
//      changeset, and let Praxi identify it.
//
// Run:  ./quickstart [apps-per-sample-count]
#include <cstdlib>
#include <iostream>

#include "core/praxi.hpp"
#include "eval/harness.hpp"
#include "fs/recorder.hpp"
#include "pkg/dataset.hpp"
#include "pkg/installer.hpp"

int main(int argc, char** argv) {
  using namespace praxi;

  const std::size_t samples_per_app =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

  // ---- 1. Corpus -----------------------------------------------------------
  // A reduced catalog keeps the quickstart fast; Catalog::standard(seed)
  // builds the full 73 + 10 application corpus.
  const auto catalog = pkg::Catalog::subset(/*seed=*/42, /*repo=*/12,
                                            /*manual=*/2);
  std::cout << "Catalog: " << catalog.application_count()
            << " applications, " << catalog.dependency_names().size()
            << " dependency packages\n";

  pkg::DatasetBuilder builder(catalog, /*seed=*/7);
  pkg::CollectOptions options;
  options.samples_per_app = samples_per_app;
  const pkg::Dataset corpus = builder.collect_dirty(options);
  std::cout << "Collected " << corpus.size() << " dirty changesets ("
            << corpus.total_bytes() / 1024 << " KB of records)\n";

  // ---- 2. Train ------------------------------------------------------------
  core::Praxi model;  // defaults: single-label, Columbus top-25 tags
  model.train_changesets(eval::pointers(corpus));
  std::cout << "Trained on " << corpus.size() << " tagsets in "
            << model.overhead().train_s << "s; model is "
            << model.model_bytes() / 1024 << " KB\n\n";

  // ---- 3. Discover ---------------------------------------------------------
  // A fresh instance: something gets installed while we watch.
  auto clock = fs::make_clock();
  fs::InMemoryFilesystem instance(clock);
  pkg::provision_base_image(instance);
  pkg::Installer installer(instance, catalog, Rng(99));
  fs::ChangesetRecorder recorder(instance);

  const std::string mystery = catalog.repository_names()[3];
  installer.install(mystery);
  const fs::Changeset observed = recorder.eject();

  const auto tags = model.extract_tags(observed);
  std::cout << "Observed " << observed.size() << " filesystem changes; "
            << "Columbus reduced them to " << tags.size() << " tags:\n  ";
  for (std::size_t i = 0; i < tags.tags.size() && i < 8; ++i) {
    std::cout << tags.tags[i].text << ":" << tags.tags[i].frequency << " ";
  }
  std::cout << "...\n";

  const auto verdict = model.snapshot()->predict(observed);
  std::cout << "\nPraxi says: " << verdict.front() << "\n";
  std::cout << "Truth:      " << mystery << "\n";
  return verdict.front() == mystery ? 0 : 1;
}
