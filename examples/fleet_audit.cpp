// Fleet audit: the compliance scenario from the paper's introduction —
// "searching for a specific piece of software among a large set of VMs or
// containers". A fleet of simulated instances accumulates software over
// time; the auditor replays each instance's recorded changesets through a
// trained Praxi model to inventory the fleet, then flags every instance
// running a blacklisted package. Also demonstrates Columbus's original
// whole-filesystem scan as a cross-check on one flagged instance.
//
// Run:  ./fleet_audit [instances]
#include <cstdlib>
#include <iostream>
#include <set>

#include "columbus/columbus.hpp"
#include "core/praxi.hpp"
#include "eval/harness.hpp"
#include "eval/table.hpp"
#include "fs/recorder.hpp"
#include "pkg/dataset.hpp"
#include "pkg/installer.hpp"
#include "pkg/noise.hpp"

int main(int argc, char** argv) {
  using namespace praxi;

  const int fleet_size = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::string blacklisted = "mongodb-server";  // unlicensed, say

  // ---- Train the auditor's model -------------------------------------------
  const auto catalog = pkg::Catalog::subset(42, 20, 3);
  pkg::DatasetBuilder builder(catalog, 7);
  pkg::CollectOptions options;
  options.samples_per_app = 6;
  const pkg::Dataset corpus = builder.collect_dirty(options);
  core::Praxi model;
  model.train_changesets(eval::pointers(corpus));

  // ---- Simulate the fleet ---------------------------------------------------
  const auto apps = catalog.application_names();
  Rng rng(2024);
  eval::TextTable table({"instance", "truth installs", "discovered",
                         "blacklist?"});
  int flagged = 0, truly_infected = 0, correct_flags = 0;

  for (int v = 0; v < fleet_size; ++v) {
    auto clock = fs::make_clock();
    fs::InMemoryFilesystem instance(clock);
    pkg::provision_base_image(instance);
    pkg::Installer installer(instance, catalog, Rng(rng.next()));
    pkg::NoiseMix noise = pkg::NoiseMix::baseline(Rng(rng.next()));
    fs::ChangesetRecorder recorder(instance);

    // Each instance installs 1-4 random applications over its lifetime;
    // one changeset is recorded per installation (continuous monitoring).
    std::set<std::string> truth;
    std::vector<fs::Changeset> history;
    const int installs = 1 + int(rng.below(4));
    for (int i = 0; i < installs; ++i) {
      std::string app;
      if (v == 2 && i == 0) {
        app = blacklisted;  // one instance is guaranteed non-compliant
      } else {
        do {
          app = apps[rng.below(apps.size())];
        } while (truth.count(app) > 0 || app == blacklisted);
      }
      truth.insert(app);
      double wait = rng.uniform(10.0, 30.0);
      clock->advance_s(wait);
      noise.tick(instance, wait);
      installer.install(app);
      history.push_back(recorder.eject());
    }

    // The auditor replays the instance's history through the model.
    std::set<std::string> discovered;
    for (const auto& cs : history) {
      discovered.insert(model.snapshot()->predict(cs).front());
    }

    const bool is_infected = truth.count(blacklisted) > 0;
    const bool flag = discovered.count(blacklisted) > 0;
    truly_infected += is_infected;
    flagged += flag;
    correct_flags += flag == is_infected;

    std::string truth_csv, found_csv;
    for (const auto& app : truth) truth_csv += app + " ";
    for (const auto& app : discovered) found_csv += app + " ";
    table.add_row({"vm-" + std::to_string(v), truth_csv, found_csv,
                   flag ? "FLAGGED" : "-"});
  }

  table.print(std::cout);
  std::cout << "\nblacklist target: " << blacklisted << " — "
            << truly_infected << " instance(s) actually run it, " << flagged
            << " flagged, " << correct_flags << "/" << fleet_size
            << " verdicts correct\n";

  // ---- Cross-check: Columbus full-tree scan of one fresh instance ----------
  auto clock = fs::make_clock();
  fs::InMemoryFilesystem suspect(clock);
  pkg::provision_base_image(suspect);
  pkg::Installer installer(suspect, catalog, Rng(1));
  installer.install(blacklisted);
  columbus::Columbus columbus;
  const auto tags = columbus.extract_from_tree(suspect);
  std::cout << "\nColumbus full-filesystem scan of a suspect instance "
               "(top tags):\n  ";
  for (std::size_t i = 0; i < tags.tags.size() && i < 10; ++i) {
    std::cout << tags.tags[i].text << ":" << tags.tags[i].frequency << " ";
  }
  std::cout << "\n(practice-based tags point a human straight at the "
               "package; Praxi automates the verdict)\n";
  return 0;
}
