// Continuous discovery on a simulated VM: the DiscoveryService samples the
// filesystem at fixed intervals (paper §II-C / §VI), infers how many
// applications were installed in each window from change bursts, and names
// them — while background noise (log rotation, caching, a live web server)
// keeps churning.
//
// Run:  ./discovery_service [hours-to-simulate]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/discovery_service.hpp"
#include "eval/harness.hpp"
#include "pkg/dataset.hpp"
#include "pkg/installer.hpp"
#include "pkg/noise.hpp"

int main(int argc, char** argv) {
  using namespace praxi;

  const double hours = argc > 1 ? std::strtod(argv[1], nullptr) : 1.0;

  // ---- Train a multi-label Praxi model -------------------------------------
  const auto catalog = pkg::Catalog::subset(42, 16, 2);
  pkg::DatasetBuilder builder(catalog, 7);
  pkg::CollectOptions options;
  options.samples_per_app = 6;
  const pkg::Dataset dirty = builder.collect_dirty(options);
  const pkg::Dataset multi =
      pkg::DatasetBuilder::synthesize_multi(dirty, 150, 2, 4, 7);

  core::PraxiConfig config;
  config.mode = core::LabelMode::kMultiLabel;
  core::Praxi model(config);
  auto train = eval::pointers(multi);
  const auto singles = eval::pointers(dirty);
  train.insert(train.end(), singles.begin(), singles.end());
  model.train_changesets(train);
  std::cout << "model trained on " << train.size() << " changesets ("
            << model.labels().size() << " known applications)\n\n";

  // ---- Monitor a live instance ----------------------------------------------
  auto clock = fs::make_clock();
  fs::InMemoryFilesystem instance(clock);
  pkg::provision_base_image(instance);
  pkg::Installer installer(instance, catalog, Rng(123));
  pkg::NoiseMix noise = pkg::NoiseMix::baseline(Rng(55));

  core::DiscoveryServiceConfig service_config;
  service_config.interval_s = 300.0;  // 5-minute sampling windows
  core::DiscoveryService service(instance, std::move(model), service_config);

  // Scripted activity: sporadic installations amid continuous noise.
  Rng rng(99);
  const auto apps = catalog.application_names();
  std::vector<std::string> installed;
  int truth_installs = 0;
  int reported_installs = 0;
  int correctly_named = 0;

  const double total_s = hours * 3600.0;
  std::vector<std::string> window_truth;
  for (double t = 0.0; t < total_s; t += 1.0) {
    clock->advance_s(1.0);
    noise.tick(instance, 1.0);

    if (rng.chance(0.0015) && installed.size() < apps.size()) {
      // Someone installs a package this tick.
      std::string app;
      do {
        app = apps[rng.below(apps.size())];
      } while (std::find(installed.begin(), installed.end(), app) !=
               installed.end());
      installer.install(app);
      installed.push_back(app);
      window_truth.push_back(app);
      ++truth_installs;
    }

    for (const auto& event : service.poll()) {
      const double minutes =
          (double(event.close_time_ms - clock->now_ms()) + total_s * 1e3) /
          60'000.0;
      (void)minutes;
      std::cout << "[t+" << std::setw(5) << int(t) << "s] window closed: "
                << event.record_count << " changes, inferred "
                << event.inferred_quantity << " install(s)";
      if (!event.applications.empty()) {
        std::cout << " ->";
        for (const auto& app : event.applications) std::cout << " " << app;
      }
      std::cout << "  (truth:";
      for (const auto& app : window_truth) std::cout << " " << app;
      std::cout << ")\n";

      reported_installs += int(event.applications.size());
      for (const auto& app : event.applications) {
        if (std::find(window_truth.begin(), window_truth.end(), app) !=
            window_truth.end()) {
          ++correctly_named;
        }
      }
      window_truth.clear();
    }
  }

  std::cout << "\nsimulated " << hours << "h: " << truth_installs
            << " real installs, " << reported_installs
            << " reported, " << correctly_named << " correctly named\n";
  return 0;
}
